//! Canonical packet sequences for whole connections.
//!
//! Every traffic model (web clients, traders, bots, the DHT) describes a
//! connection as a [`ConnSpec`] and hands it to [`emit_connection`], which
//! expands it into the packet sequence a real stack would produce —
//! handshake, data bursts, teardown, retransmitted SYNs for dead peers, and
//! so on. Funnelling all models through one synthesizer guarantees the
//! Argus aggregator sees consistent, protocol-plausible input.

use std::net::Ipv4Addr;

use pw_netsim::{SimDuration, SimTime};

use crate::packet::{Packet, PacketSink, Payload, Proto, TcpFlags};

/// Nominal round-trip time used for handshake pacing.
const RTT: SimDuration = SimDuration::from_millis(50);
/// IPv4+TCP header overhead per packet, in bytes.
const TCP_HDR: u64 = 40;
/// IPv4+UDP header overhead per packet, in bytes.
const UDP_HDR: u64 = 28;
/// Payload bytes per full-size data packet.
const MSS: u64 = 1460;
/// Maximum gap between data bursts, kept safely below the aggregator's
/// 60 s idle timeout so one logical transfer stays one flow record.
const BURST_GAP_CAP: SimDuration = SimDuration::from_secs(30);

/// How a synthesized connection plays out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnOutcome {
    /// TCP: full handshake, optional data both ways, FIN teardown.
    Established {
        /// Application bytes from initiator to responder.
        bytes_up: u64,
        /// Application bytes from responder to initiator.
        bytes_down: u64,
    },
    /// TCP: SYN retransmissions, no answer (dead or filtered peer).
    NoAnswer,
    /// TCP: SYN answered by RST (port closed).
    Rejected,
    /// UDP: request and response datagrams.
    UdpExchange {
        /// Application bytes in the request direction.
        bytes_up: u64,
        /// Application bytes in the response direction.
        bytes_down: u64,
    },
    /// UDP: request (with `retries` retransmissions) and silence.
    UdpNoReply {
        /// Application bytes per request datagram.
        bytes_up: u64,
        /// Retransmissions after the first datagram.
        retries: u32,
    },
}

/// A connection to synthesize. Build with [`ConnSpec::tcp`] or
/// [`ConnSpec::udp`] and the chainable configuration methods.
///
/// # Examples
///
/// ```
/// use pw_flow::synth::{ConnOutcome, ConnSpec, emit_connection};
/// use pw_netsim::{SimDuration, SimTime};
/// use std::net::Ipv4Addr;
///
/// let spec = ConnSpec::tcp(SimTime::ZERO, Ipv4Addr::new(10, 1, 0, 1), 40000,
///                          Ipv4Addr::new(1, 2, 3, 4), 80)
///     .outcome(ConnOutcome::Established { bytes_up: 500, bytes_down: 8000 })
///     .duration(SimDuration::from_secs(2))
///     .payload(b"GET / HTTP/1.1\r\n");
/// let mut pkts = Vec::new();
/// emit_connection(&mut pkts, &spec);
/// assert!(pkts.len() >= 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnSpec {
    /// First-packet time.
    pub start: SimTime,
    /// Initiator address.
    pub src: Ipv4Addr,
    /// Initiator port.
    pub sport: u16,
    /// Responder address.
    pub dst: Ipv4Addr,
    /// Responder port.
    pub dport: u16,
    /// Transport protocol.
    pub proto: Proto,
    /// Connection outcome.
    pub outcome: ConnOutcome,
    /// Target duration for established TCP connections (data is spread over
    /// it). Ignored by the failure outcomes and UDP (single exchange).
    pub dur: SimDuration,
    /// Initiator's first payload bytes (what Argus will capture).
    pub first_payload: Payload,
}

impl ConnSpec {
    /// A TCP connection spec with default outcome
    /// `Established { 0, 0 }` and a 1-second duration.
    pub fn tcp(start: SimTime, src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Self {
        ConnSpec {
            start,
            src,
            sport,
            dst,
            dport,
            proto: Proto::Tcp,
            outcome: ConnOutcome::Established {
                bytes_up: 0,
                bytes_down: 0,
            },
            dur: SimDuration::from_secs(1),
            first_payload: Payload::empty(),
        }
    }

    /// A UDP connection spec with default outcome
    /// `UdpExchange { 0, 0 }`.
    pub fn udp(start: SimTime, src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Self {
        ConnSpec {
            start,
            src,
            sport,
            dst,
            dport,
            proto: Proto::Udp,
            outcome: ConnOutcome::UdpExchange {
                bytes_up: 0,
                bytes_down: 0,
            },
            dur: SimDuration::ZERO,
            first_payload: Payload::empty(),
        }
    }

    /// Sets the outcome.
    ///
    /// # Panics
    ///
    /// Panics if the outcome's transport does not match the spec's protocol.
    pub fn outcome(mut self, outcome: ConnOutcome) -> Self {
        let tcp_outcome = matches!(
            outcome,
            ConnOutcome::Established { .. } | ConnOutcome::NoAnswer | ConnOutcome::Rejected
        );
        assert_eq!(
            tcp_outcome,
            self.proto == Proto::Tcp,
            "outcome transport must match spec protocol"
        );
        self.outcome = outcome;
        self
    }

    /// Sets the target duration for established connections.
    pub fn duration(mut self, dur: SimDuration) -> Self {
        self.dur = dur;
        self
    }

    /// Sets the initiator's first payload bytes.
    pub fn payload(mut self, bytes: &[u8]) -> Self {
        self.first_payload = Payload::capture(bytes);
        self
    }
}

fn data_packet(
    t: SimTime,
    from: (Ipv4Addr, u16),
    to: (Ipv4Addr, u16),
    proto: Proto,
    app_bytes: u64,
    flags: TcpFlags,
    payload: Payload,
) -> Packet {
    let hdr = if proto == Proto::Tcp {
        TCP_HDR
    } else {
        UDP_HDR
    };
    let pkts = if app_bytes == 0 {
        1
    } else {
        app_bytes.div_ceil(MSS)
    } as u32;
    Packet {
        time: t,
        src: from.0,
        sport: from.1,
        dst: to.0,
        dport: to.1,
        proto,
        pkts,
        bytes: app_bytes + hdr * pkts as u64,
        flags,
        payload,
    }
}

/// Expands `spec` into its packet sequence on `sink`.
pub fn emit_connection<S: PacketSink + ?Sized>(sink: &mut S, spec: &ConnSpec) {
    let fwd = (spec.src, spec.sport);
    let rev = (spec.dst, spec.dport);
    let t0 = spec.start;
    match spec.outcome {
        ConnOutcome::Established {
            bytes_up,
            bytes_down,
        } => {
            // Handshake.
            sink.emit(data_packet(
                t0,
                fwd,
                rev,
                Proto::Tcp,
                0,
                TcpFlags::SYN,
                Payload::empty(),
            ));
            sink.emit(data_packet(
                t0 + RTT,
                rev,
                fwd,
                Proto::Tcp,
                0,
                TcpFlags::SYN | TcpFlags::ACK,
                Payload::empty(),
            ));
            let t_est = t0 + RTT + RTT;
            sink.emit(data_packet(
                t_est,
                fwd,
                rev,
                Proto::Tcp,
                0,
                TcpFlags::ACK,
                Payload::empty(),
            ));
            // Data bursts, spread across the duration but never more than
            // BURST_GAP_CAP apart.
            let dur = spec.dur.max(RTT);
            let bursts = (dur.as_millis() / BURST_GAP_CAP.as_millis() + 1).max(1);
            let step = SimDuration::from_millis(dur.as_millis() / bursts);
            let mut first_up = true;
            for b in 0..bursts {
                let t = t_est + step.mul_f64(b as f64) + SimDuration::from_millis(10);
                if bytes_up > 0 {
                    let share = bytes_up / bursts + u64::from(b == 0) * (bytes_up % bursts);
                    if share > 0 {
                        let pl = if first_up {
                            spec.first_payload
                        } else {
                            Payload::empty()
                        };
                        first_up = false;
                        sink.emit(data_packet(
                            t,
                            fwd,
                            rev,
                            Proto::Tcp,
                            share,
                            TcpFlags::ACK | TcpFlags::PSH,
                            pl,
                        ));
                    }
                }
                if bytes_down > 0 {
                    let share = bytes_down / bursts + u64::from(b == 0) * (bytes_down % bursts);
                    if share > 0 {
                        sink.emit(data_packet(
                            t + RTT,
                            rev,
                            fwd,
                            Proto::Tcp,
                            share,
                            TcpFlags::ACK | TcpFlags::PSH,
                            Payload::empty(),
                        ));
                    }
                }
            }
            // If no data carried the payload, push it with the teardown ACK.
            let t_end = t0 + dur + RTT + RTT;
            let pl = if first_up {
                spec.first_payload
            } else {
                Payload::empty()
            };
            sink.emit(data_packet(
                t_end,
                fwd,
                rev,
                Proto::Tcp,
                0,
                TcpFlags::FIN | TcpFlags::ACK,
                pl,
            ));
            sink.emit(data_packet(
                t_end + RTT,
                rev,
                fwd,
                Proto::Tcp,
                0,
                TcpFlags::FIN | TcpFlags::ACK,
                Payload::empty(),
            ));
            sink.emit(data_packet(
                t_end + RTT + RTT,
                fwd,
                rev,
                Proto::Tcp,
                0,
                TcpFlags::ACK,
                Payload::empty(),
            ));
        }
        ConnOutcome::NoAnswer => {
            // Classic SYN retransmission backoff: 0 s, 3 s, 9 s.
            for off in [0u64, 3, 9] {
                sink.emit(data_packet(
                    t0 + SimDuration::from_secs(off),
                    fwd,
                    rev,
                    Proto::Tcp,
                    0,
                    TcpFlags::SYN,
                    Payload::empty(),
                ));
            }
        }
        ConnOutcome::Rejected => {
            sink.emit(data_packet(
                t0,
                fwd,
                rev,
                Proto::Tcp,
                0,
                TcpFlags::SYN,
                Payload::empty(),
            ));
            sink.emit(data_packet(
                t0 + RTT,
                rev,
                fwd,
                Proto::Tcp,
                0,
                TcpFlags::RST,
                Payload::empty(),
            ));
        }
        ConnOutcome::UdpExchange {
            bytes_up,
            bytes_down,
        } => {
            sink.emit(data_packet(
                t0,
                fwd,
                rev,
                Proto::Udp,
                bytes_up,
                TcpFlags::NONE,
                spec.first_payload,
            ));
            sink.emit(data_packet(
                t0 + RTT,
                rev,
                fwd,
                Proto::Udp,
                bytes_down,
                TcpFlags::NONE,
                Payload::empty(),
            ));
        }
        ConnOutcome::UdpNoReply { bytes_up, retries } => {
            for r in 0..=retries as u64 {
                let pl = if r == 0 {
                    spec.first_payload
                } else {
                    Payload::empty()
                };
                sink.emit(data_packet(
                    t0 + SimDuration::from_millis(700 * r),
                    fwd,
                    rev,
                    Proto::Udp,
                    bytes_up,
                    TcpFlags::NONE,
                    pl,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::ArgusAggregator;
    use crate::record::FlowState;

    const A: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn run_one(spec: ConnSpec) -> crate::record::FlowRecord {
        let mut agg = ArgusAggregator::default();
        emit_connection(&mut agg, &spec);
        let recs = agg.finish(SimTime::from_hours(2));
        assert_eq!(recs.len(), 1, "one spec must yield one flow record");
        recs[0]
    }

    #[test]
    fn established_round_trip_through_argus() {
        let spec = ConnSpec::tcp(SimTime::from_secs(1), A, 40000, B, 80)
            .outcome(ConnOutcome::Established {
                bytes_up: 500,
                bytes_down: 9000,
            })
            .payload(b"GET /index.html HTTP/1.1");
        let r = run_one(spec);
        assert_eq!(r.state, FlowState::Established);
        assert_eq!(r.src, A);
        assert!(r.src_bytes >= 500);
        assert!(r.dst_bytes >= 9000);
        assert_eq!(r.payload.as_bytes(), b"GET /index.html HTTP/1.1");
    }

    #[test]
    fn long_transfer_stays_one_flow() {
        // 5-minute transfer: bursts must be < idle timeout apart.
        let spec = ConnSpec::tcp(SimTime::ZERO, A, 40001, B, 6881)
            .outcome(ConnOutcome::Established {
                bytes_up: 2000,
                bytes_down: 5_000_000,
            })
            .duration(SimDuration::from_mins(5));
        let r = run_one(spec);
        assert_eq!(r.state, FlowState::Established);
        assert!(r.dst_bytes >= 5_000_000);
        assert!(r.duration() >= SimDuration::from_mins(5));
    }

    #[test]
    fn no_answer_becomes_failed_flow() {
        let spec = ConnSpec::tcp(SimTime::ZERO, A, 40002, B, 8).outcome(ConnOutcome::NoAnswer);
        let r = run_one(spec);
        assert_eq!(r.state, FlowState::SynNoAnswer);
        assert_eq!(r.src_pkts, 3); // SYN ×3
        assert_eq!(r.dst_pkts, 0);
    }

    #[test]
    fn rejected_becomes_failed_flow() {
        let spec = ConnSpec::tcp(SimTime::ZERO, A, 40003, B, 25).outcome(ConnOutcome::Rejected);
        let r = run_one(spec);
        assert_eq!(r.state, FlowState::Rejected);
    }

    #[test]
    fn udp_exchange_and_silence() {
        let ok = ConnSpec::udp(SimTime::ZERO, A, 50000, B, 53)
            .outcome(ConnOutcome::UdpExchange {
                bytes_up: 60,
                bytes_down: 180,
            })
            .payload(b"dns-query");
        let r = run_one(ok);
        assert_eq!(r.state, FlowState::UdpReplied);
        assert_eq!(r.payload.as_bytes(), b"dns-query");

        let dead =
            ConnSpec::udp(SimTime::ZERO, A, 50001, B, 7871).outcome(ConnOutcome::UdpNoReply {
                bytes_up: 25,
                retries: 2,
            });
        let r = run_one(dead);
        assert_eq!(r.state, FlowState::UdpSilent);
        assert_eq!(r.src_pkts, 3);
    }

    #[test]
    fn zero_byte_established_still_carries_payload() {
        let spec = ConnSpec::tcp(SimTime::ZERO, A, 40004, B, 6346)
            .outcome(ConnOutcome::Established {
                bytes_up: 0,
                bytes_down: 0,
            })
            .payload(b"GNUTELLA CONNECT/0.6");
        let r = run_one(spec);
        assert_eq!(r.payload.as_bytes(), b"GNUTELLA CONNECT/0.6");
    }

    #[test]
    fn byte_counts_include_headers() {
        let spec =
            ConnSpec::udp(SimTime::ZERO, A, 50002, B, 53).outcome(ConnOutcome::UdpExchange {
                bytes_up: 100,
                bytes_down: 0,
            });
        let r = run_one(spec);
        assert_eq!(r.src_bytes, 128); // 100 + 28-byte header
    }

    #[test]
    #[should_panic(expected = "transport")]
    fn mismatched_outcome_panics() {
        let _ = ConnSpec::udp(SimTime::ZERO, A, 1, B, 2).outcome(ConnOutcome::NoAnswer);
    }
}
