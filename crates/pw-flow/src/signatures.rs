//! Payload signatures for ground-truth Trader identification.
//!
//! The paper (§III) labels file-sharing hosts using the 64 payload bytes in
//! each flow record:
//!
//! - **Gnutella**: keywords `GNUTELLA`, `CONNECT BACK`, `LIME`;
//! - **eMule**: initial byte `0xE3` or `0xC5` followed by protocol frames;
//! - **BitTorrent**: `BitTorrent protocol`, tracker requests
//!   `GET /scrape` / `GET /announce`, and DHT messages containing
//!   `d1:ad2:id20` or `d1:rd2:id20`.
//!
//! [`classify_payload`] implements exactly that test, and the builder
//! functions produce protocol-faithful payload prefixes for the simulated
//! traders, so labelling in the synthetic datasets goes through the same
//! code path as it would on real traffic.

use serde::{Deserialize, Serialize};

use crate::packet::Payload;
use crate::record::FlowRecord;

/// A P2P file-sharing application recognizable from payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum P2pApp {
    /// The Gnutella overlay (e.g. LimeWire).
    Gnutella,
    /// eMule / eDonkey, including its Kademlia ("Kad") DHT.
    Emule,
    /// BitTorrent, including tracker HTTP and the Mainline DHT.
    BitTorrent,
}

impl std::fmt::Display for P2pApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            P2pApp::Gnutella => write!(f, "gnutella"),
            P2pApp::Emule => write!(f, "emule"),
            P2pApp::BitTorrent => write!(f, "bittorrent"),
        }
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Classifies a payload prefix as belonging to a known file-sharing
/// protocol, per the paper's signature list.
///
/// # Examples
///
/// ```
/// use pw_flow::signatures::{classify_payload, P2pApp};
///
/// assert_eq!(classify_payload(b"GNUTELLA CONNECT/0.6"), Some(P2pApp::Gnutella));
/// assert_eq!(classify_payload(b"GET / HTTP/1.1"), None);
/// ```
pub fn classify_payload(payload: &[u8]) -> Option<P2pApp> {
    if payload.is_empty() {
        return None;
    }
    // Gnutella keywords.
    if contains(payload, b"GNUTELLA")
        || contains(payload, b"CONNECT BACK")
        || contains(payload, b"LIME")
    {
        return Some(P2pApp::Gnutella);
    }
    // BitTorrent: peer wire handshake, tracker HTTP, DHT bencoding.
    if contains(payload, b"BitTorrent protocol")
        || payload.starts_with(b"GET /scrape")
        || payload.starts_with(b"GET /announce")
        || contains(payload, b"d1:ad2:id20")
        || contains(payload, b"d1:rd2:id20")
    {
        return Some(P2pApp::BitTorrent);
    }
    // eMule: initial protocol byte 0xE3 (eDonkey/Kad) or 0xC5 (extended).
    if payload[0] == 0xE3 || payload[0] == 0xC5 {
        return Some(P2pApp::Emule);
    }
    None
}

/// Classifies a flow record by its captured initiator payload.
pub fn classify_flow(record: &FlowRecord) -> Option<P2pApp> {
    classify_payload(record.payload.as_bytes())
}

/// Builders producing protocol-faithful payload prefixes for the simulated
/// traders. Each returns at most 64 bytes (what Argus would capture).
pub mod build {
    use super::Payload;

    /// Gnutella 0.6 connection handshake.
    pub fn gnutella_connect() -> Payload {
        Payload::capture(b"GNUTELLA CONNECT/0.6\r\nUser-Agent: LimeWire/4.12\r\n")
    }

    /// Gnutella query hit push request.
    pub fn gnutella_connect_back() -> Payload {
        Payload::capture(b"GNUTELLA CONNECT BACK/0.6\r\n")
    }

    /// eDonkey TCP hello frame: 0xE3, length, opcode 0x01 (HELLO).
    pub fn emule_hello() -> Payload {
        let mut b = vec![0xE3u8, 0x20, 0x00, 0x00, 0x00, 0x01, 0x10];
        b.extend_from_slice(&[0xAB; 16]); // user hash
        Payload::capture(&b)
    }

    /// eMule extended-protocol (compressed) frame: initial byte 0xC5.
    pub fn emule_extended() -> Payload {
        Payload::capture(&[0xC5, 0x0A, 0x00, 0x00, 0x00, 0x40, 0x01, 0x02, 0x03])
    }

    /// eMule Kad UDP frame: 0xE3 then a Kad opcode (e.g. KADEMLIA_REQ).
    pub fn emule_kad(opcode: u8) -> Payload {
        let mut b = vec![0xE3u8, opcode];
        b.extend_from_slice(&[0x11; 20]);
        Payload::capture(&b)
    }

    /// BitTorrent peer-wire handshake: length-prefixed protocol string.
    pub fn bittorrent_handshake() -> Payload {
        let mut b = vec![19u8];
        b.extend_from_slice(b"BitTorrent protocol");
        b.extend_from_slice(&[0u8; 8]);
        b.extend_from_slice(&[0x55; 20]); // info-hash
        Payload::capture(&b)
    }

    /// Tracker announce request over HTTP.
    pub fn tracker_announce() -> Payload {
        Payload::capture(b"GET /announce?info_hash=%12%34&peer_id=-PW0001- HTTP/1.1\r\n")
    }

    /// Tracker scrape request over HTTP.
    pub fn tracker_scrape() -> Payload {
        Payload::capture(b"GET /scrape?info_hash=%12%34 HTTP/1.1\r\n")
    }

    /// Mainline DHT query (bencoded; contains `d1:ad2:id20`).
    pub fn bt_dht_query() -> Payload {
        Payload::capture(b"d1:ad2:id20:abcdefghij0123456789e1:q4:ping1:t2:aa1:y1:qe")
    }

    /// Mainline DHT response (bencoded; contains `d1:rd2:id20`).
    pub fn bt_dht_response() -> Payload {
        Payload::capture(b"d1:rd2:id20:abcdefghij0123456789e1:t2:aa1:y1:re")
    }

    /// A plain HTTP GET (not P2P; for web traffic).
    pub fn http_get(path: &str) -> Payload {
        let mut b = Vec::with_capacity(64);
        b.extend_from_slice(b"GET ");
        b.extend_from_slice(path.as_bytes());
        b.extend_from_slice(b" HTTP/1.1\r\nHost: example.com\r\n");
        Payload::capture(&b)
    }

    /// An opaque, encrypted-looking payload (for Nugache, whose traffic is
    /// encrypted and matches no signature). Deterministic in `seed`.
    pub fn opaque(seed: u64) -> Payload {
        let mut b = [0u8; 48];
        let mut s = seed | 1;
        for chunk in b.chunks_mut(8) {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        // Avoid accidentally starting with an eMule protocol byte.
        if b[0] == 0xE3 || b[0] == 0xC5 {
            b[0] = 0x7F;
        }
        Payload::capture(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnutella_signatures() {
        assert_eq!(
            classify_payload(build::gnutella_connect().as_bytes()),
            Some(P2pApp::Gnutella)
        );
        assert_eq!(
            classify_payload(build::gnutella_connect_back().as_bytes()),
            Some(P2pApp::Gnutella)
        );
        assert_eq!(
            classify_payload(b"something LIME here"),
            Some(P2pApp::Gnutella)
        );
    }

    #[test]
    fn emule_signatures() {
        assert_eq!(
            classify_payload(build::emule_hello().as_bytes()),
            Some(P2pApp::Emule)
        );
        assert_eq!(
            classify_payload(build::emule_extended().as_bytes()),
            Some(P2pApp::Emule)
        );
        assert_eq!(
            classify_payload(build::emule_kad(0x20).as_bytes()),
            Some(P2pApp::Emule)
        );
    }

    #[test]
    fn bittorrent_signatures() {
        for p in [
            build::bittorrent_handshake(),
            build::tracker_announce(),
            build::tracker_scrape(),
            build::bt_dht_query(),
            build::bt_dht_response(),
        ] {
            assert_eq!(
                classify_payload(p.as_bytes()),
                Some(P2pApp::BitTorrent),
                "{:?}",
                p
            );
        }
    }

    #[test]
    fn non_p2p_payloads_unclassified() {
        assert_eq!(classify_payload(b""), None);
        assert_eq!(
            classify_payload(build::http_get("/index.html").as_bytes()),
            None
        );
        assert_eq!(classify_payload(b"EHLO mail.example.com"), None);
        for seed in 0..50 {
            assert_eq!(
                classify_payload(build::opaque(seed).as_bytes()),
                None,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn emule_byte_only_matters_at_start() {
        // 0xE3 in the middle of an HTTP request must not classify as eMule.
        let mut p = b"GET /x HTTP/1.1 ".to_vec();
        p.push(0xE3);
        assert_eq!(classify_payload(&p), None);
    }

    #[test]
    fn payloads_fit_capture_window() {
        for p in [
            build::gnutella_connect(),
            build::emule_hello(),
            build::bittorrent_handshake(),
            build::tracker_announce(),
            build::bt_dht_query(),
            build::opaque(9),
        ] {
            assert!(p.len() <= Payload::MAX);
            assert!(!p.is_empty());
        }
    }
}
