//! Interned host identifiers.
//!
//! Every stage of the detection pipeline is a per-host pass, and hashing
//! raw [`Ipv4Addr`] keys through a fresh `HashMap` at each stage dominates
//! the profile-extraction hot path. A [`HostInterner`] assigns each
//! distinct address a dense [`HostId`] once, so downstream per-host state
//! becomes a plain `Vec` indexed by `HostId` — no re-hashing, better
//! locality, and cheap sharding by integer id.

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Dense identifier for an interned host address.
///
/// Ids are assigned contiguously from zero in interning order, so a
/// `Vec<T>` of length [`HostInterner::len`] indexed by [`HostId::index`]
/// is a total map over the interner's hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(u32);

impl HostId {
    /// The id's position in dense per-host tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a dense table index.
    ///
    /// The caller is responsible for `index` having come from an id of the
    /// same interner (e.g. iterating `0..interner.len()`).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize);
        HostId(index as u32)
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Bidirectional map between [`Ipv4Addr`]s and dense [`HostId`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostInterner {
    ids: HashMap<Ipv4Addr, HostId>,
    ips: Vec<Ipv4Addr>,
}

impl HostInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `hosts` addresses.
    pub fn with_capacity(hosts: usize) -> Self {
        Self {
            ids: HashMap::with_capacity(hosts),
            ips: Vec::with_capacity(hosts),
        }
    }

    /// Returns the id for `ip`, assigning the next dense id on first sight.
    ///
    /// # Panics
    ///
    /// Panics if the interner already holds `u32::MAX` distinct hosts —
    /// beyond the id space, a wrapped id would silently alias two hosts'
    /// state, which is far worse than stopping.
    pub fn intern(&mut self, ip: Ipv4Addr) -> HostId {
        if let Some(&id) = self.ids.get(&ip) {
            return id;
        }
        assert!(
            self.ips.len() < u32::MAX as usize,
            "host interner exhausted its 32-bit id space"
        );
        let id = HostId::from_index(self.ips.len());
        self.ids.insert(ip, id);
        self.ips.push(ip);
        id
    }

    /// The id previously assigned to `ip`, if any. Never allocates.
    pub fn get(&self, ip: Ipv4Addr) -> Option<HostId> {
        self.ids.get(&ip).copied()
    }

    /// The address behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    #[inline]
    pub fn resolve(&self, id: HostId) -> Ipv4Addr {
        self.ips[id.index()]
    }

    /// Number of distinct hosts interned.
    pub fn len(&self) -> usize {
        self.ips.len()
    }

    /// Whether no host has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ips.is_empty()
    }

    /// All interned addresses, indexed by [`HostId::index`].
    pub fn ips(&self) -> &[Ipv4Addr] {
        &self.ips
    }

    /// Iterates `(id, ip)` pairs in dense id order.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, Ipv4Addr)> + '_ {
        self.ips
            .iter()
            .enumerate()
            .map(|(i, &ip)| (HostId::from_index(i), ip))
    }
}

impl FromIterator<Ipv4Addr> for HostInterner {
    fn from_iter<T: IntoIterator<Item = Ipv4Addr>>(iter: T) -> Self {
        let mut interner = HostInterner::new();
        for ip in iter {
            interner.intern(ip);
        }
        interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_order() {
        let mut h = HostInterner::new();
        let a = h.intern(Ipv4Addr::new(10, 0, 0, 1));
        let b = h.intern(Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(h.len(), 2);
        assert_eq!(h.resolve(a), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(h.resolve(b), Ipv4Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn reintern_is_idempotent() {
        let mut h = HostInterner::new();
        let ip = Ipv4Addr::new(192, 168, 1, 1);
        let first = h.intern(ip);
        let second = h.intern(ip);
        assert_eq!(first, second);
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(ip), Some(first));
    }

    #[test]
    fn get_never_allocates() {
        let h = HostInterner::new();
        assert_eq!(h.get(Ipv4Addr::new(1, 1, 1, 1)), None);
        assert!(h.is_empty());
    }

    #[test]
    fn iter_matches_ips() {
        let h: HostInterner = [Ipv4Addr::new(1, 0, 0, 1), Ipv4Addr::new(2, 0, 0, 2)]
            .into_iter()
            .collect();
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs.len(), 2);
        for (id, ip) in pairs {
            assert_eq!(h.resolve(id), ip);
            assert_eq!(h.ips()[id.index()], ip);
        }
    }
}
