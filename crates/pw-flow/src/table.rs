//! Columnar flow storage shared by every detection stage.
//!
//! A [`FlowTable`] is the struct-of-arrays form of a `Vec<FlowRecord>`:
//! one column per field, endpoints interned to dense [`HostId`]s, plus a
//! time-sorted index. It is built once — by [`FlowTable::from_records`] or
//! [`ArgusAggregator::finish_table`](crate::aggregator::ArgusAggregator::finish_table)
//! — and then borrowed by each per-host pass, which walks the relevant
//! columns sequentially instead of re-hashing `Ipv4Addr` keys per flow.

use pw_netsim::{SimDuration, SimTime};

use crate::host::{HostId, HostInterner};
use crate::packet::{Payload, Proto};
use crate::record::{FlowRecord, FlowState};

/// Struct-of-arrays flow storage with interned endpoints.
///
/// Row `i` holds the fields of one bi-directional flow. Rows keep the
/// insertion order of the source records; [`order`](FlowTable::order) is
/// the permutation that visits rows in canonical time order
/// `(start, src, dst, sport, dport)` — the order both the batch pipeline
/// and the streaming engine process flows in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowTable {
    hosts: HostInterner,
    start: Vec<SimTime>,
    end: Vec<SimTime>,
    src: Vec<HostId>,
    dst: Vec<HostId>,
    sport: Vec<u16>,
    dport: Vec<u16>,
    proto: Vec<Proto>,
    src_pkts: Vec<u64>,
    src_bytes: Vec<u64>,
    dst_pkts: Vec<u64>,
    dst_bytes: Vec<u64>,
    state: Vec<FlowState>,
    payload: Vec<Payload>,
    order: Vec<u32>,
}

impl FlowTable {
    /// Builds the columnar table from row-oriented records, interning every
    /// endpoint and computing the time-sorted index.
    pub fn from_records(records: &[FlowRecord]) -> Self {
        let n = records.len();
        let mut t = FlowTable {
            hosts: HostInterner::new(),
            start: Vec::with_capacity(n),
            end: Vec::with_capacity(n),
            src: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            sport: Vec::with_capacity(n),
            dport: Vec::with_capacity(n),
            proto: Vec::with_capacity(n),
            src_pkts: Vec::with_capacity(n),
            src_bytes: Vec::with_capacity(n),
            dst_pkts: Vec::with_capacity(n),
            dst_bytes: Vec::with_capacity(n),
            state: Vec::with_capacity(n),
            payload: Vec::with_capacity(n),
            order: Vec::new(),
        };
        for r in records {
            t.start.push(r.start);
            t.end.push(r.end);
            t.src.push(t.hosts.intern(r.src));
            t.dst.push(t.hosts.intern(r.dst));
            t.sport.push(r.sport);
            t.dport.push(r.dport);
            t.proto.push(r.proto);
            t.src_pkts.push(r.src_pkts);
            t.src_bytes.push(r.src_bytes);
            t.dst_pkts.push(r.dst_pkts);
            t.dst_bytes.push(r.dst_bytes);
            t.state.push(r.state);
            t.payload.push(r.payload);
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| {
            let row = i as usize;
            (
                t.start[row],
                t.hosts.resolve(t.src[row]),
                t.hosts.resolve(t.dst[row]),
                t.sport[row],
                t.dport[row],
            )
        });
        t.order = order;
        t
    }

    /// Number of flows stored.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// Whether the table holds no flows.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// The endpoint interner: every `src`/`dst` id in the table resolves
    /// here, and its `len` is the number of distinct endpoints seen.
    pub fn hosts(&self) -> &HostInterner {
        &self.hosts
    }

    /// Row indices in canonical time order `(start, src, dst, sport,
    /// dport)`; a permutation of `0..len()`.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Iterates row indices in canonical time order.
    pub fn rows_in_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().map(|&i| i as usize)
    }

    /// First-packet time of row `row`.
    #[inline]
    pub fn start(&self, row: usize) -> SimTime {
        self.start[row]
    }

    /// Last-packet time of row `row`.
    #[inline]
    pub fn end(&self, row: usize) -> SimTime {
        self.end[row]
    }

    /// Initiator id of row `row`.
    #[inline]
    pub fn src(&self, row: usize) -> HostId {
        self.src[row]
    }

    /// Responder id of row `row`.
    #[inline]
    pub fn dst(&self, row: usize) -> HostId {
        self.dst[row]
    }

    /// Initiator port of row `row`.
    #[inline]
    pub fn sport(&self, row: usize) -> u16 {
        self.sport[row]
    }

    /// Responder port of row `row`.
    #[inline]
    pub fn dport(&self, row: usize) -> u16 {
        self.dport[row]
    }

    /// Transport protocol of row `row`.
    #[inline]
    pub fn proto(&self, row: usize) -> Proto {
        self.proto[row]
    }

    /// Bytes sent by the initiator of row `row`.
    #[inline]
    pub fn src_bytes(&self, row: usize) -> u64 {
        self.src_bytes[row]
    }

    /// Bytes sent by the responder of row `row`.
    #[inline]
    pub fn dst_bytes(&self, row: usize) -> u64 {
        self.dst_bytes[row]
    }

    /// Connection state of row `row`.
    #[inline]
    pub fn state(&self, row: usize) -> FlowState {
        self.state[row]
    }

    /// Whether row `row` is a failed connection attempt (§V-A).
    #[inline]
    pub fn is_failed(&self, row: usize) -> bool {
        self.state[row].is_failed()
    }

    /// Flow duration of row `row`.
    #[inline]
    pub fn duration(&self, row: usize) -> SimDuration {
        self.end[row] - self.start[row]
    }

    /// Counts rows that are exact duplicates of their predecessor in
    /// canonical time order — the shape flow duplication faults take
    /// (replayed export batches, doubled-up collectors). Identical records
    /// sort adjacently, so one ordered pass finds them without hashing.
    pub fn duplicate_rows(&self) -> usize {
        self.order
            .windows(2)
            .filter(|pair| {
                let (a, b) = (pair[0] as usize, pair[1] as usize);
                self.start[a] == self.start[b]
                    && self.src[a] == self.src[b]
                    && self.dst[a] == self.dst[b]
                    && self.sport[a] == self.sport[b]
                    && self.dport[a] == self.dport[b]
                    && self.record(a) == self.record(b)
            })
            .count()
    }

    /// Materializes row `row` back into a [`FlowRecord`].
    pub fn record(&self, row: usize) -> FlowRecord {
        FlowRecord {
            start: self.start[row],
            end: self.end[row],
            src: self.hosts.resolve(self.src[row]),
            sport: self.sport[row],
            dst: self.hosts.resolve(self.dst[row]),
            dport: self.dport[row],
            proto: self.proto[row],
            src_pkts: self.src_pkts[row],
            src_bytes: self.src_bytes[row],
            dst_pkts: self.dst_pkts[row],
            dst_bytes: self.dst_bytes[row],
            state: self.state[row],
            payload: self.payload[row],
        }
    }

    /// Materializes every row in canonical time order.
    pub fn to_records(&self) -> Vec<FlowRecord> {
        self.rows_in_order().map(|row| self.record(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn rec(start_ms: u64, src: Ipv4Addr, dst: Ipv4Addr) -> FlowRecord {
        FlowRecord {
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(start_ms + 500),
            src,
            sport: 40_000,
            dst,
            dport: 80,
            proto: Proto::Tcp,
            src_pkts: 3,
            src_bytes: 120,
            dst_pkts: 2,
            dst_bytes: 4000,
            state: FlowState::Established,
            payload: Payload::capture(b"GET /"),
        }
    }

    #[test]
    fn round_trips_records() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let records = vec![rec(100, a, b), rec(50, b, a), rec(100, a, b)];
        let t = FlowTable::from_records(&records);
        assert_eq!(t.len(), 3);
        assert_eq!(t.hosts().len(), 2);
        for (row, r) in records.iter().enumerate() {
            assert_eq!(&t.record(row), r);
        }
    }

    #[test]
    fn order_is_canonical_time_order() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let records = vec![rec(300, b, a), rec(100, a, b), rec(200, a, b)];
        let t = FlowTable::from_records(&records);
        let starts: Vec<u64> = t
            .rows_in_order()
            .map(|row| t.start(row).as_millis())
            .collect();
        assert_eq!(starts, vec![100, 200, 300]);
        let mut sorted = t.order().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "order is a permutation");
    }

    #[test]
    fn to_records_sorts_canonically() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let records = vec![rec(300, b, a), rec(100, a, b)];
        let t = FlowTable::from_records(&records);
        let mut expected = records.clone();
        expected.sort_by_key(|f| (f.start, f.src, f.dst, f.sport, f.dport));
        assert_eq!(t.to_records(), expected);
    }

    #[test]
    fn duplicate_rows_counts_exact_copies_only() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let mut near = rec(100, a, b);
        near.src_bytes += 1; // same 5-tuple and start, different content
        let records = vec![rec(100, a, b), rec(200, a, b), rec(100, a, b), near];
        let t = FlowTable::from_records(&records);
        assert_eq!(t.duplicate_rows(), 1);
        assert_eq!(FlowTable::from_records(&[]).duplicate_rows(), 0);
        // Triplicate: two rows are copies of their predecessor.
        let r = rec(50, a, b);
        assert_eq!(FlowTable::from_records(&[r, r, r]).duplicate_rows(), 2);
    }

    #[test]
    fn empty_table() {
        let t = FlowTable::from_records(&[]);
        assert!(t.is_empty());
        assert!(t.hosts().is_empty());
        assert!(t.order().is_empty());
    }
}
