//! Binary wire format for streaming flow records to a detection server.
//!
//! A border exporter ships its flows to the long-running `pw-server`
//! process over one TCP connection. The wire format is deliberately
//! boring — little-endian, fixed layouts, explicit version gate, no
//! serialization dependency — so an exporter can be implemented in a few
//! dozen lines of any language:
//!
//! ```text
//! exporter → server   [`Hello`]      "PWFS" + version u16 + exporter_id u32 [+ crc32 u32]
//! server → exporter   [`HelloAck`]   "PWFS" + version u16 + next_seq u64   [+ crc32 u32]
//! exporter → server   frame*         len u32 (body bytes) + body           [+ crc32 u32]
//! ```
//!
//! The bracketed CRC32 trailers exist only on version-2 sessions: the
//! exporter picks the version in its [`Hello`] and both sides append an
//! IEEE CRC32 ([`crc32`]) of the preceding message bytes (frame CRCs
//! cover the body only, not the length prefix). A failed check surfaces
//! as the typed [`FrameError::CrcMismatch`] instead of a silent decode of
//! garbage. Version-1 peers are still spoken to without trailers, so old
//! exporters interoperate with a hardened server and vice versa.
//!
//! Each frame body starts with a tag byte:
//!
//! | tag | frame | body after the tag |
//! |-----|-------|---------------------|
//! | `0x01` | [`Frame::Flow`] | `seq` u64 + 127-byte flow record |
//! | `0x02` | [`Frame::Tick`] | feed-clock `now_ms` u64 |
//! | `0x03` | [`Frame::Bye`]  | empty |
//!
//! `seq` is the exporter's own monotone counter, starting at 0. The
//! server acknowledges the next sequence it expects in [`HelloAck`], so a
//! reconnecting exporter (or one replaying after a server restart) knows
//! exactly where to resume — flows below `next_seq` are already applied
//! and must be skipped, which is what makes delivery exactly-once without
//! any application-level dedup.
//!
//! The flow record layout is fixed at [`FLOW_WIRE_LEN`] bytes: times as
//! millisecond u64s, addresses as 4 network-order octets, ports u16,
//! proto and state as single bytes, the four counters u64, and the
//! payload prefix as a length byte plus [`Payload::MAX`] raw bytes
//! (zero-padded). Everything multi-byte is little-endian.
//!
//! [`read_frame`]/[`write_frame`] adapt the codec to blocking
//! [`io::Read`]/[`io::Write`] streams; `decode`/`encode` work on byte
//! slices for tests and non-blocking transports.

use std::io::{self, Read, Write};
use std::net::Ipv4Addr;

use pw_netsim::SimTime;

use crate::packet::{Payload, Proto};
use crate::record::{FlowRecord, FlowState};

/// First bytes of every connection in either direction.
pub const MAGIC: [u8; 4] = *b"PWFS";

/// Current protocol version, gated in the handshake. Version 2 appends a
/// CRC32 integrity trailer to the handshake messages and every frame.
pub const VERSION: u16 = 2;

/// Legacy protocol version without CRC trailers; still accepted on both
/// sides of the handshake so old exporters keep working.
pub const VERSION_V1: u16 = 1;

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE 802.3 CRC32 (the zlib/PNG polynomial), implemented locally so the
/// wire format and the checkpoint trailer share one checksum with no
/// dependency. Standard check value: `crc32(b"123456789") == 0xCBF43926`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn version_ok(version: u16) -> Result<u16, FrameError> {
    if version == VERSION || version == VERSION_V1 {
        Ok(version)
    } else {
        Err(FrameError::UnsupportedVersion(version))
    }
}

/// Serialized size of one flow record inside a [`Frame::Flow`] body.
pub const FLOW_WIRE_LEN: usize = 8 + 8 + 4 + 2 + 4 + 2 + 1 + 1 + 8 + 8 + 8 + 8 + 1 + Payload::MAX;

/// Upper bound on a frame body; lengths beyond this are rejected before
/// any allocation, so a garbage length prefix cannot balloon memory.
pub const MAX_FRAME_LEN: u32 = 4096;

/// Frame body tags.
const TAG_FLOW: u8 = 0x01;
const TAG_TICK: u8 = 0x02;
const TAG_BYE: u8 = 0x03;

/// Why a handshake or frame failed to decode.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error (includes unexpected EOF mid-frame).
    Io(io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// A version this implementation does not speak.
    UnsupportedVersion(u16),
    /// A frame body with an unknown tag byte.
    UnknownTag(u8),
    /// A length prefix above [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A frame body whose length does not match its tag's layout.
    BadLength {
        /// The tag whose layout was violated.
        tag: u8,
        /// Bytes the layout requires.
        expected: usize,
        /// Bytes the body actually had.
        got: usize,
    },
    /// An unknown protocol byte in a flow record.
    BadProto(u8),
    /// An unknown flow-state byte in a flow record.
    BadState(u8),
    /// A payload length byte above [`Payload::MAX`].
    BadPayloadLen(u8),
    /// A version-2 message whose CRC32 trailer does not match its bytes:
    /// the frame was corrupted in transit and must not be applied.
    CrcMismatch {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC carried by the trailer.
        got: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected \"PWFS\")"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            FrameError::Oversized(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
            FrameError::BadLength { tag, expected, got } => {
                write!(
                    f,
                    "tag {tag:#04x} body: expected {expected} bytes, got {got}"
                )
            }
            FrameError::BadProto(b) => write!(f, "unknown proto byte {b:#04x}"),
            FrameError::BadState(b) => write!(f, "unknown flow-state byte {b:#04x}"),
            FrameError::BadPayloadLen(n) => {
                write!(f, "payload length {n} exceeds {}", Payload::MAX)
            }
            FrameError::CrcMismatch { expected, got } => {
                write!(
                    f,
                    "crc mismatch: computed {expected:#010x}, trailer {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Exporter's opening message: identifies the connection's exporter so
/// the server can resume its sequence, and picks the protocol version
/// (and with it whether CRC trailers are in effect) for the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Stable identifier of the border exporter (survives reconnects).
    pub exporter_id: u32,
    /// Protocol version this session will speak ([`VERSION`] or
    /// [`VERSION_V1`]).
    pub version: u16,
}

impl Hello {
    /// A current-version hello for `exporter_id`.
    pub fn new(exporter_id: u32) -> Self {
        Hello {
            exporter_id,
            version: VERSION,
        }
    }
}

/// Server's handshake reply: the next flow sequence number it expects
/// from this exporter. Flows below it are already applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// First sequence number the server has not yet applied.
    pub next_seq: u64,
    /// Echo of the session version the server will speak.
    pub version: u16,
}

impl HelloAck {
    /// A current-version ack expecting `next_seq`.
    pub fn new(next_seq: u64) -> Self {
        HelloAck {
            next_seq,
            version: VERSION,
        }
    }
}

/// One length-prefixed message after the handshake.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Frame {
    /// A flow record with the exporter's sequence number.
    Flow {
        /// Exporter-assigned monotone sequence number, from 0.
        seq: u64,
        /// The record itself.
        flow: FlowRecord,
    },
    /// Feed-clock heartbeat driving the server's stall detector.
    Tick {
        /// Exporter's feed clock, milliseconds.
        now_ms: u64,
    },
    /// Clean end of stream; the connection closes after this.
    Bye,
}

fn proto_byte(p: Proto) -> u8 {
    match p {
        Proto::Tcp => 0,
        Proto::Udp => 1,
    }
}

fn proto_from(b: u8) -> Result<Proto, FrameError> {
    match b {
        0 => Ok(Proto::Tcp),
        1 => Ok(Proto::Udp),
        other => Err(FrameError::BadProto(other)),
    }
}

fn state_byte(s: FlowState) -> u8 {
    match s {
        FlowState::Established => 0,
        FlowState::SynNoAnswer => 1,
        FlowState::Rejected => 2,
        FlowState::ResetAfterData => 3,
        FlowState::UdpReplied => 4,
        FlowState::UdpSilent => 5,
    }
}

fn state_from(b: u8) -> Result<FlowState, FrameError> {
    Ok(match b {
        0 => FlowState::Established,
        1 => FlowState::SynNoAnswer,
        2 => FlowState::Rejected,
        3 => FlowState::ResetAfterData,
        4 => FlowState::UdpReplied,
        5 => FlowState::UdpSilent,
        other => return Err(FrameError::BadState(other)),
    })
}

/// Appends the [`FLOW_WIRE_LEN`]-byte encoding of `f` to `buf`.
pub fn encode_flow(buf: &mut Vec<u8>, f: &FlowRecord) {
    buf.extend_from_slice(&f.start.as_millis().to_le_bytes());
    buf.extend_from_slice(&f.end.as_millis().to_le_bytes());
    buf.extend_from_slice(&f.src.octets());
    buf.extend_from_slice(&f.sport.to_le_bytes());
    buf.extend_from_slice(&f.dst.octets());
    buf.extend_from_slice(&f.dport.to_le_bytes());
    buf.push(proto_byte(f.proto));
    buf.push(state_byte(f.state));
    buf.extend_from_slice(&f.src_pkts.to_le_bytes());
    buf.extend_from_slice(&f.src_bytes.to_le_bytes());
    buf.extend_from_slice(&f.dst_pkts.to_le_bytes());
    buf.extend_from_slice(&f.dst_bytes.to_le_bytes());
    let payload = f.payload.as_bytes();
    buf.push(payload.len() as u8);
    buf.extend_from_slice(payload);
    buf.extend(std::iter::repeat_n(0u8, Payload::MAX - payload.len()));
}

fn u64_at(b: &[u8], at: usize) -> u64 {
    let mut out = [0u8; 8];
    out.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(out)
}

fn u16_at(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

/// Decodes a [`FLOW_WIRE_LEN`]-byte flow record.
pub fn decode_flow(b: &[u8]) -> Result<FlowRecord, FrameError> {
    if b.len() != FLOW_WIRE_LEN {
        return Err(FrameError::BadLength {
            tag: TAG_FLOW,
            expected: FLOW_WIRE_LEN,
            got: b.len(),
        });
    }
    let payload_len = b[62] as usize;
    if payload_len > Payload::MAX {
        return Err(FrameError::BadPayloadLen(b[62]));
    }
    Ok(FlowRecord {
        start: SimTime::from_millis(u64_at(b, 0)),
        end: SimTime::from_millis(u64_at(b, 8)),
        src: Ipv4Addr::new(b[16], b[17], b[18], b[19]),
        sport: u16_at(b, 20),
        dst: Ipv4Addr::new(b[22], b[23], b[24], b[25]),
        dport: u16_at(b, 26),
        proto: proto_from(b[28])?,
        state: state_from(b[29])?,
        src_pkts: u64_at(b, 30),
        src_bytes: u64_at(b, 38),
        dst_pkts: u64_at(b, 46),
        dst_bytes: u64_at(b, 54),
        payload: Payload::capture(&b[63..63 + payload_len]),
    })
}

impl Frame {
    /// Appends the length-prefixed encoding of this frame to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let at = buf.len();
        buf.extend_from_slice(&[0; 4]); // length back-patched below
        match self {
            Frame::Flow { seq, flow } => {
                buf.push(TAG_FLOW);
                buf.extend_from_slice(&seq.to_le_bytes());
                encode_flow(buf, flow);
            }
            Frame::Tick { now_ms } => {
                buf.push(TAG_TICK);
                buf.extend_from_slice(&now_ms.to_le_bytes());
            }
            Frame::Bye => buf.push(TAG_BYE),
        }
        let body_len = (buf.len() - at - 4) as u32;
        buf[at..at + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Decodes a frame body (the bytes after the length prefix).
    pub fn decode(body: &[u8]) -> Result<Frame, FrameError> {
        let (&tag, rest) = body.split_first().ok_or(FrameError::BadLength {
            tag: 0,
            expected: 1,
            got: 0,
        })?;
        match tag {
            TAG_FLOW => {
                if rest.len() != 8 + FLOW_WIRE_LEN {
                    return Err(FrameError::BadLength {
                        tag,
                        expected: 8 + FLOW_WIRE_LEN,
                        got: rest.len(),
                    });
                }
                Ok(Frame::Flow {
                    seq: u64_at(rest, 0),
                    flow: decode_flow(&rest[8..])?,
                })
            }
            TAG_TICK => {
                if rest.len() != 8 {
                    return Err(FrameError::BadLength {
                        tag,
                        expected: 8,
                        got: rest.len(),
                    });
                }
                Ok(Frame::Tick {
                    now_ms: u64_at(rest, 0),
                })
            }
            TAG_BYE => {
                if !rest.is_empty() {
                    return Err(FrameError::BadLength {
                        tag,
                        expected: 0,
                        got: rest.len(),
                    });
                }
                Ok(Frame::Bye)
            }
            other => Err(FrameError::UnknownTag(other)),
        }
    }
}

/// Writes the exporter's opening [`Hello`] in its declared version
/// (version-2 hellos carry a CRC32 trailer so a corrupted handshake is a
/// typed error rather than a garbled exporter id).
pub fn write_hello<W: Write>(w: &mut W, hello: Hello) -> io::Result<()> {
    let mut buf = [0u8; 14];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4..6].copy_from_slice(&hello.version.to_le_bytes());
    buf[6..10].copy_from_slice(&hello.exporter_id.to_le_bytes());
    if hello.version == VERSION_V1 {
        return w.write_all(&buf[..10]);
    }
    let crc = crc32(&buf[..10]);
    buf[10..14].copy_from_slice(&crc.to_le_bytes());
    w.write_all(&buf)
}

/// Reads a [`Hello`], validating magic, version, and (for version 2) the
/// CRC32 trailer.
///
/// `first` optionally supplies bytes already consumed from the stream
/// (a server that sniffed the magic to tell binary exporters from text
/// query clients passes them back here).
pub fn read_hello<R: Read>(r: &mut R, first: &[u8]) -> Result<Hello, FrameError> {
    let mut buf = [0u8; 14];
    buf[..first.len()].copy_from_slice(first);
    let mut have = first.len();
    // Magic and version decide how many bytes the hello has in total.
    if have < 6 {
        r.read_exact(&mut buf[have..6])?;
        have = 6;
    }
    if buf[..4] != MAGIC {
        return Err(FrameError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    let version = version_ok(u16::from_le_bytes([buf[4], buf[5]]))?;
    let total = if version == VERSION_V1 { 10 } else { 14 };
    r.read_exact(&mut buf[have..total])?;
    if version != VERSION_V1 {
        let got = u32::from_le_bytes([buf[10], buf[11], buf[12], buf[13]]);
        let expected = crc32(&buf[..10]);
        if got != expected {
            return Err(FrameError::CrcMismatch { expected, got });
        }
    }
    Ok(Hello {
        exporter_id: u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]),
        version,
    })
}

/// Writes the server's [`HelloAck`] in its declared version (version-2
/// acks carry a CRC32 trailer — a corrupted `next_seq` would otherwise
/// silently desync the resume protocol).
pub fn write_hello_ack<W: Write>(w: &mut W, ack: HelloAck) -> io::Result<()> {
    let mut buf = [0u8; 18];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4..6].copy_from_slice(&ack.version.to_le_bytes());
    buf[6..14].copy_from_slice(&ack.next_seq.to_le_bytes());
    if ack.version == VERSION_V1 {
        return w.write_all(&buf[..14]);
    }
    let crc = crc32(&buf[..14]);
    buf[14..18].copy_from_slice(&crc.to_le_bytes());
    w.write_all(&buf)
}

/// Reads a [`HelloAck`], validating magic, version, and (for version 2)
/// the CRC32 trailer.
pub fn read_hello_ack<R: Read>(r: &mut R) -> Result<HelloAck, FrameError> {
    let mut buf = [0u8; 18];
    r.read_exact(&mut buf[..6])?;
    if buf[..4] != MAGIC {
        return Err(FrameError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    let version = version_ok(u16::from_le_bytes([buf[4], buf[5]]))?;
    let total = if version == VERSION_V1 { 14 } else { 18 };
    r.read_exact(&mut buf[6..total])?;
    if version != VERSION_V1 {
        let got = u32::from_le_bytes([buf[14], buf[15], buf[16], buf[17]]);
        let expected = crc32(&buf[..14]);
        if got != expected {
            return Err(FrameError::CrcMismatch { expected, got });
        }
    }
    Ok(HelloAck {
        next_seq: u64_at(&buf, 6),
        version,
    })
}

/// Writes one length-prefixed frame in the legacy version-1 format (no
/// CRC trailer). Prefer [`write_frame_v`] on negotiated sessions.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    write_frame_v(w, frame, VERSION_V1)
}

/// Writes one length-prefixed frame for a session speaking `version`.
/// On version-2 sessions a CRC32 of the body follows the body; the
/// length prefix still counts body bytes only.
pub fn write_frame_v<W: Write>(w: &mut W, frame: &Frame, version: u16) -> io::Result<()> {
    let mut buf = Vec::with_capacity(4 + 1 + 8 + FLOW_WIRE_LEN + 4);
    frame.encode(&mut buf);
    if version != VERSION_V1 {
        let crc = crc32(&buf[4..]);
        buf.extend_from_slice(&crc.to_le_bytes());
    }
    w.write_all(&buf)
}

/// Reads one length-prefixed version-1 frame. Returns `Ok(None)` on a
/// clean EOF at a frame boundary; EOF mid-frame is an [`FrameError::Io`]
/// error. Prefer [`read_frame_v`] on negotiated sessions.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, FrameError> {
    read_frame_v(r, VERSION_V1)
}

/// Reads one length-prefixed frame for a session speaking `version`,
/// verifying the CRC32 trailer on version-2 sessions before any decode.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary; EOF mid-frame
/// is an [`FrameError::Io`] error. A corrupted length prefix surfaces as
/// [`FrameError::Oversized`] or (because the misplaced read boundary
/// shifts the trailer) [`FrameError::CrcMismatch`] — either way the
/// caller knows the byte stream can no longer be trusted.
pub fn read_frame_v<R: Read>(r: &mut R, version: u16) -> Result<Option<Frame>, FrameError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let trailer = if version == VERSION_V1 { 0 } else { 4 };
    let mut body = vec![0u8; len as usize + trailer];
    r.read_exact(&mut body)?;
    if trailer != 0 {
        let at = body.len() - 4;
        let got = u32::from_le_bytes([body[at], body[at + 1], body[at + 2], body[at + 3]]);
        let expected = crc32(&body[..at]);
        if got != expected {
            return Err(FrameError::CrcMismatch { expected, got });
        }
        body.truncate(at);
    }
    Frame::decode(&body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_netsim::SimDuration;

    fn sample_flow() -> FlowRecord {
        FlowRecord {
            start: SimTime::from_millis(86_400_123),
            end: SimTime::from_millis(86_400_123) + SimDuration::from_secs(2),
            src: Ipv4Addr::new(10, 1, 2, 3),
            sport: 50_123,
            dst: Ipv4Addr::new(203, 0, 113, 9),
            dport: 6881,
            proto: Proto::Udp,
            state: FlowState::UdpReplied,
            src_pkts: 7,
            src_bytes: 1_234,
            dst_pkts: 9,
            dst_bytes: 55_000,
            payload: Payload::capture(b"d1:ad2:id20:"),
        }
    }

    #[test]
    fn flow_frame_round_trips() {
        let frame = Frame::Flow {
            seq: u64::MAX - 1,
            flow: sample_flow(),
        };
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        assert_eq!(buf.len(), 4 + 1 + 8 + FLOW_WIRE_LEN);
        let decoded = Frame::decode(&buf[4..]).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn stream_io_round_trips_and_detects_truncation() {
        let frames = [
            Frame::Flow {
                seq: 0,
                flow: sample_flow(),
            },
            Frame::Tick { now_ms: 1_000 },
            Frame::Bye,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().unwrap(), *f);
        }
        assert!(read_frame(&mut r).unwrap().is_none());

        // Truncation mid-frame is an error, not a clean end.
        let mut r = &wire[..wire.len() - 1];
        read_frame(&mut r).unwrap().unwrap();
        read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn handshake_round_trips_and_gates_version() {
        let mut wire = Vec::new();
        write_hello(&mut wire, Hello::new(42)).unwrap();
        let hello = read_hello(&mut &wire[..], &[]).unwrap();
        assert_eq!(hello.exporter_id, 42);
        assert_eq!(hello.version, VERSION);
        // Sniffed-magic path: the first four bytes were already consumed.
        let hello = read_hello(&mut &wire[4..], &MAGIC).unwrap();
        assert_eq!(hello.exporter_id, 42);

        let mut ack_wire = Vec::new();
        write_hello_ack(&mut ack_wire, HelloAck::new(9000)).unwrap();
        assert_eq!(
            read_hello_ack(&mut &ack_wire[..]).unwrap(),
            HelloAck::new(9000)
        );

        wire[4] = 0xFF;
        assert!(matches!(
            read_hello(&mut &wire[..], &[]),
            Err(FrameError::UnsupportedVersion(_))
        ));
        wire[0] = b'X';
        assert!(matches!(
            read_hello(&mut &wire[..], &[]),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn v1_handshake_still_speaks() {
        let legacy = Hello {
            exporter_id: 7,
            version: VERSION_V1,
        };
        let mut wire = Vec::new();
        write_hello(&mut wire, legacy).unwrap();
        assert_eq!(wire.len(), 10); // no trailer on v1
        assert_eq!(read_hello(&mut &wire[..], &[]).unwrap(), legacy);

        let ack = HelloAck {
            next_seq: 3,
            version: VERSION_V1,
        };
        let mut wire = Vec::new();
        write_hello_ack(&mut wire, ack).unwrap();
        assert_eq!(wire.len(), 14);
        assert_eq!(read_hello_ack(&mut &wire[..]).unwrap(), ack);
    }

    #[test]
    fn corrupt_v2_handshake_is_a_typed_error() {
        let mut wire = Vec::new();
        write_hello(&mut wire, Hello::new(42)).unwrap();
        assert_eq!(wire.len(), 14);
        wire[7] ^= 0x10; // flip a bit of the exporter id
        assert!(matches!(
            read_hello(&mut &wire[..], &[]),
            Err(FrameError::CrcMismatch { .. })
        ));

        let mut wire = Vec::new();
        write_hello_ack(&mut wire, HelloAck::new(9000)).unwrap();
        assert_eq!(wire.len(), 18);
        wire[8] ^= 0x01; // flip a bit of next_seq
        assert!(matches!(
            read_hello_ack(&mut &wire[..]),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn v2_frames_round_trip_and_catch_bit_flips() {
        let frames = [
            Frame::Flow {
                seq: 11,
                flow: sample_flow(),
            },
            Frame::Tick { now_ms: 2_000 },
            Frame::Bye,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame_v(&mut wire, f, VERSION).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(read_frame_v(&mut r, VERSION).unwrap().unwrap(), *f);
        }
        assert!(read_frame_v(&mut r, VERSION).unwrap().is_none());

        // Any single flipped bit — body or trailer — fails the check.
        let first_len = 4 + 1 + 8 + FLOW_WIRE_LEN + 4;
        for at in [4usize, 20, first_len - 1] {
            let mut bad = wire.clone();
            bad[at] ^= 0x40;
            let got = read_frame_v(&mut &bad[..], VERSION);
            assert!(
                matches!(got, Err(FrameError::CrcMismatch { .. })),
                "flip at {at}: {got:?}"
            );
        }

        // A v1 writer and a v1 reader still interoperate via the _v API.
        let mut wire = Vec::new();
        write_frame(&mut wire, &frames[0]).unwrap();
        assert_eq!(
            read_frame_v(&mut &wire[..], VERSION_V1).unwrap().unwrap(),
            frames[0]
        );
    }

    #[test]
    fn corrupt_bodies_are_rejected_with_context() {
        let mut buf = Vec::new();
        Frame::Flow {
            seq: 3,
            flow: sample_flow(),
        }
        .encode(&mut buf);
        let body = &buf[4..];

        let mut bad = body.to_vec();
        bad[0] = 0x7F;
        assert!(matches!(
            Frame::decode(&bad),
            Err(FrameError::UnknownTag(0x7F))
        ));

        assert!(matches!(
            Frame::decode(&body[..body.len() - 1]),
            Err(FrameError::BadLength { .. })
        ));

        let mut bad = body.to_vec();
        bad[1 + 8 + 28] = 9; // proto byte
        assert!(matches!(Frame::decode(&bad), Err(FrameError::BadProto(9))));

        let mut bad = body.to_vec();
        bad[1 + 8 + 62] = 65; // payload length byte
        assert!(matches!(
            Frame::decode(&bad),
            Err(FrameError::BadPayloadLen(65))
        ));

        let oversize = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut r = &oversize[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Oversized(_))));
    }
}
