//! Packet → bi-directional-flow aggregation (the "Argus" of the pipeline).
//!
//! Packets sharing a canonicalized 5-tuple within an idle timeout become one
//! [`FlowRecord`]. The initiator is the sender of the first packet; TCP
//! state is reconstructed from the flags seen in each direction.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use pw_netsim::{SimDuration, SimTime};

use crate::packet::{Packet, PacketSink, Payload, Proto, TcpFlags};
use crate::record::{FlowRecord, FlowState};
use crate::table::FlowTable;

/// Aggregator tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArgusConfig {
    /// Idle gap after which a 5-tuple starts a *new* flow record (Argus'
    /// flow inactivity timeout). Default: 60 s.
    pub idle_timeout: SimDuration,
}

impl Default for ArgusConfig {
    fn default() -> Self {
        Self {
            idle_timeout: SimDuration::from_secs(60),
        }
    }
}

/// Canonical bidirectional key: the 5-tuple with endpoints ordered so both
/// directions map to the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct BidiKey {
    lo: (Ipv4Addr, u16),
    hi: (Ipv4Addr, u16),
    proto: Proto,
}

impl BidiKey {
    fn of(pkt: &Packet) -> Self {
        let a = (pkt.src, pkt.sport);
        let b = (pkt.dst, pkt.dport);
        if a <= b {
            BidiKey {
                lo: a,
                hi: b,
                proto: pkt.proto,
            }
        } else {
            BidiKey {
                lo: b,
                hi: a,
                proto: pkt.proto,
            }
        }
    }
}

#[derive(Debug)]
struct FlowBuild {
    start: SimTime,
    last: SimTime,
    initiator: (Ipv4Addr, u16),
    responder: (Ipv4Addr, u16),
    proto: Proto,
    fwd_pkts: u64,
    fwd_bytes: u64,
    rev_pkts: u64,
    rev_bytes: u64,
    fwd_flags: TcpFlags,
    rev_flags: TcpFlags,
    established_seen: bool,
    rst_seen: bool,
    payload: Payload,
}

impl FlowBuild {
    fn new(pkt: &Packet) -> Self {
        FlowBuild {
            start: pkt.time,
            last: pkt.time,
            initiator: (pkt.src, pkt.sport),
            responder: (pkt.dst, pkt.dport),
            proto: pkt.proto,
            fwd_pkts: 0,
            fwd_bytes: 0,
            rev_pkts: 0,
            rev_bytes: 0,
            fwd_flags: TcpFlags::NONE,
            rev_flags: TcpFlags::NONE,
            established_seen: false,
            rst_seen: false,
            payload: Payload::empty(),
        }
    }

    fn absorb(&mut self, pkt: &Packet) {
        self.last = self.last.max(pkt.time);
        let forward = (pkt.src, pkt.sport) == self.initiator;
        if forward {
            self.fwd_pkts += pkt.pkts as u64;
            self.fwd_bytes += pkt.bytes;
            self.fwd_flags |= pkt.flags;
            if self.payload.is_empty() && !pkt.payload.is_empty() {
                self.payload = pkt.payload;
            }
        } else {
            self.rev_pkts += pkt.pkts as u64;
            self.rev_bytes += pkt.bytes;
            self.rev_flags |= pkt.flags;
        }
        if pkt.proto == Proto::Tcp {
            if pkt.flags.contains(TcpFlags::RST) {
                self.rst_seen = true;
            }
            // Handshake completion: initiator sent SYN, responder answered
            // SYN+ACK. (The final ACK is implied once data or teardown
            // flows; tracking it adds nothing for state classification.)
            if self.fwd_flags.contains(TcpFlags::SYN)
                && self.rev_flags.contains(TcpFlags::SYN | TcpFlags::ACK)
            {
                self.established_seen = true;
            }
        }
    }

    fn state(&self) -> FlowState {
        match self.proto {
            Proto::Udp => {
                if self.rev_pkts > 0 {
                    FlowState::UdpReplied
                } else {
                    FlowState::UdpSilent
                }
            }
            Proto::Tcp => {
                if self.established_seen {
                    if self.rst_seen {
                        FlowState::ResetAfterData
                    } else {
                        FlowState::Established
                    }
                } else if self.rst_seen {
                    FlowState::Rejected
                } else {
                    FlowState::SynNoAnswer
                }
            }
        }
    }

    fn finish(self) -> FlowRecord {
        let state = self.state();
        FlowRecord {
            start: self.start,
            end: self.last,
            src: self.initiator.0,
            sport: self.initiator.1,
            dst: self.responder.0,
            dport: self.responder.1,
            proto: self.proto,
            src_pkts: self.fwd_pkts,
            src_bytes: self.fwd_bytes,
            dst_pkts: self.rev_pkts,
            dst_bytes: self.rev_bytes,
            state,
            payload: self.payload,
        }
    }
}

/// Real-time flow monitor: feed it packets (in roughly increasing time
/// order), then [`finish`](ArgusAggregator::finish) to flush.
///
/// Completed flows (idle-timeout expiry) accumulate internally; call
/// [`drain_completed`](ArgusAggregator::drain_completed) periodically on
/// long runs to bound memory, or just collect everything from `finish`.
#[derive(Debug, Default)]
pub struct ArgusAggregator {
    cfg: ArgusConfig,
    active: HashMap<BidiKey, FlowBuild>,
    completed: Vec<FlowRecord>,
}

impl ArgusAggregator {
    /// Creates an aggregator with the given configuration.
    pub fn new(cfg: ArgusConfig) -> Self {
        Self {
            cfg,
            active: HashMap::new(),
            completed: Vec::new(),
        }
    }

    /// Number of currently open flows.
    pub fn open_flows(&self) -> usize {
        self.active.len()
    }

    /// Takes the flow records completed so far (by idle timeout), sorted by
    /// start time then endpoints — the order every downstream consumer
    /// (CSV writer, `pw-detect`'s streaming engine) processes flows in.
    ///
    /// Records complete when their 5-tuple goes idle, so a long-lived flow
    /// can surface *after* flows that started later; feed a
    /// `pw_detect::stream::DetectionEngine` with a lateness bound of at
    /// least the idle timeout plus the longest expected flow duration.
    pub fn drain_completed(&mut self) -> Vec<FlowRecord> {
        let mut out = std::mem::take(&mut self.completed);
        out.sort_by_key(|r| (r.start, r.src, r.sport, r.dst, r.dport, r.end));
        out
    }

    /// Expires every flow idle at time `now`; useful between simulated days
    /// or as the periodic tick that feeds a streaming consumer.
    pub fn expire_idle(&mut self, now: SimTime) {
        let timeout = self.cfg.idle_timeout;
        let mut expired: Vec<BidiKey> = self
            .active
            .iter()
            .filter(|(_, fb)| now.since(fb.last) > timeout)
            .map(|(k, _)| *k)
            .collect();
        expired.sort_unstable(); // HashMap iteration order is not deterministic
        for k in expired {
            if let Some(fb) = self.active.remove(&k) {
                self.completed.push(fb.finish());
            }
        }
    }

    /// Flushes all remaining flows as of `end` and returns every record
    /// produced (sorted by start time, then endpoints, for determinism).
    pub fn finish(mut self, end: SimTime) -> Vec<FlowRecord> {
        self.expire_idle(end);
        for (_, fb) in self.active.drain() {
            self.completed.push(fb.finish());
        }
        let mut out = std::mem::take(&mut self.completed);
        out.sort_by_key(|r| (r.start, r.src, r.sport, r.dst, r.dport, r.end));
        out
    }

    /// Flushes all remaining flows as of `end` directly into the columnar
    /// [`FlowTable`] every detection stage consumes — endpoints interned,
    /// time-sorted index built once.
    pub fn finish_table(self, end: SimTime) -> FlowTable {
        FlowTable::from_records(&self.finish(end))
    }
}

impl PacketSink for ArgusAggregator {
    fn emit(&mut self, packet: Packet) {
        let key = BidiKey::of(&packet);
        // A packet after the idle timeout starts a new record for the tuple.
        let timed_out = self
            .active
            .get(&key)
            .is_some_and(|fb| packet.time.since(fb.last) > self.cfg.idle_timeout);
        if timed_out {
            if let Some(fb) = self.active.remove(&key) {
                self.completed.push(fb.finish());
            }
        }
        let fb = self
            .active
            .entry(key)
            .or_insert_with(|| FlowBuild::new(&packet));
        fb.absorb(&packet);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn pkt(
        t: u64,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        flags: TcpFlags,
    ) -> Packet {
        Packet {
            time: SimTime::from_millis(t),
            src,
            dst,
            sport,
            dport,
            proto: Proto::Tcp,
            pkts: 1,
            bytes: 40,
            flags,
            payload: Payload::empty(),
        }
    }

    fn udp(t: u64, src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, bytes: u64) -> Packet {
        Packet {
            time: SimTime::from_millis(t),
            src,
            dst,
            sport,
            dport,
            proto: Proto::Udp,
            pkts: 1,
            bytes,
            flags: TcpFlags::NONE,
            payload: Payload::empty(),
        }
    }

    #[test]
    fn tcp_handshake_aggregates_to_established() {
        let mut agg = ArgusAggregator::default();
        agg.emit(pkt(0, A, 5000, B, 80, TcpFlags::SYN));
        agg.emit(pkt(50, B, 80, A, 5000, TcpFlags::SYN | TcpFlags::ACK));
        agg.emit(pkt(100, A, 5000, B, 80, TcpFlags::ACK));
        let recs = agg.finish(SimTime::from_secs(10));
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.state, FlowState::Established);
        assert_eq!(r.src, A); // initiator preserved
        assert_eq!(r.src_pkts, 2);
        assert_eq!(r.dst_pkts, 1);
        assert!(!r.is_failed());
    }

    #[test]
    fn syn_without_answer_is_failed() {
        let mut agg = ArgusAggregator::default();
        agg.emit(pkt(0, A, 5000, B, 80, TcpFlags::SYN));
        agg.emit(pkt(1000, A, 5000, B, 80, TcpFlags::SYN));
        let recs = agg.finish(SimTime::from_secs(10));
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].state, FlowState::SynNoAnswer);
        assert!(recs[0].is_failed());
    }

    #[test]
    fn syn_rst_is_rejected() {
        let mut agg = ArgusAggregator::default();
        agg.emit(pkt(0, A, 5000, B, 80, TcpFlags::SYN));
        agg.emit(pkt(30, B, 80, A, 5000, TcpFlags::RST));
        let recs = agg.finish(SimTime::from_secs(10));
        assert_eq!(recs[0].state, FlowState::Rejected);
        assert!(recs[0].is_failed());
    }

    #[test]
    fn rst_after_establishment_is_success() {
        let mut agg = ArgusAggregator::default();
        agg.emit(pkt(0, A, 5000, B, 80, TcpFlags::SYN));
        agg.emit(pkt(20, B, 80, A, 5000, TcpFlags::SYN | TcpFlags::ACK));
        agg.emit(pkt(40, A, 5000, B, 80, TcpFlags::ACK));
        agg.emit(pkt(500, B, 80, A, 5000, TcpFlags::RST));
        let recs = agg.finish(SimTime::from_secs(10));
        assert_eq!(recs[0].state, FlowState::ResetAfterData);
        assert!(!recs[0].is_failed());
    }

    #[test]
    fn udp_reply_vs_silence() {
        let mut agg = ArgusAggregator::default();
        agg.emit(udp(0, A, 6000, B, 53, 70));
        agg.emit(udp(20, B, 53, A, 6000, 120));
        agg.emit(udp(0, A, 6001, B, 53, 70)); // different tuple, no reply
        let recs = agg.finish(SimTime::from_secs(10));
        assert_eq!(recs.len(), 2);
        let replied = recs.iter().find(|r| r.sport == 6000).unwrap();
        let silent = recs.iter().find(|r| r.sport == 6001).unwrap();
        assert_eq!(replied.state, FlowState::UdpReplied);
        assert_eq!(silent.state, FlowState::UdpSilent);
        assert!(silent.is_failed());
    }

    #[test]
    fn idle_timeout_splits_flows() {
        let mut agg = ArgusAggregator::new(ArgusConfig {
            idle_timeout: SimDuration::from_secs(60),
        });
        agg.emit(udp(0, A, 6000, B, 53, 70));
        agg.emit(udp(30_000, B, 53, A, 6000, 70)); // 30 s later: same flow
        agg.emit(udp(200_000, A, 6000, B, 53, 70)); // 170 s gap: new flow
        let recs = agg.finish(SimTime::from_secs(400));
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].src_pkts + recs[0].dst_pkts, 2);
        assert_eq!(recs[1].src_pkts, 1);
    }

    #[test]
    fn initiator_is_first_packet_sender_even_on_shared_key() {
        // The responder's packet arrives first in a *different* flow: ensure
        // keys canonicalize but direction assignment stays per-flow.
        let mut agg = ArgusAggregator::default();
        agg.emit(udp(0, B, 53, A, 6000, 120)); // B initiates here
        let recs = agg.finish(SimTime::from_secs(1));
        assert_eq!(recs[0].src, B);
        assert_eq!(recs[0].dst, A);
    }

    #[test]
    fn byte_and_packet_conservation() {
        let mut agg = ArgusAggregator::default();
        let mut total_bytes = 0;
        let mut total_pkts = 0;
        for i in 0..10 {
            let p = udp(i * 10, A, 7000, B, 9999, 100 + i);
            total_bytes += p.bytes;
            total_pkts += p.pkts as u64;
            agg.emit(p);
        }
        let recs = agg.finish(SimTime::from_secs(100));
        let got_bytes: u64 = recs.iter().map(|r| r.src_bytes + r.dst_bytes).sum();
        let got_pkts: u64 = recs.iter().map(|r| r.src_pkts + r.dst_pkts).sum();
        assert_eq!(got_bytes, total_bytes);
        assert_eq!(got_pkts, total_pkts);
    }

    #[test]
    fn payload_captured_from_initiator_first_data() {
        let mut agg = ArgusAggregator::default();
        let mut p = pkt(0, A, 5000, B, 80, TcpFlags::SYN);
        agg.emit(p);
        p = pkt(10, B, 80, A, 5000, TcpFlags::SYN | TcpFlags::ACK);
        p.payload = Payload::capture(b"SERVER BANNER");
        agg.emit(p);
        p = pkt(20, A, 5000, B, 80, TcpFlags::ACK | TcpFlags::PSH);
        p.payload = Payload::capture(b"GET / HTTP/1.1");
        agg.emit(p);
        let recs = agg.finish(SimTime::from_secs(1));
        // Initiator payload wins; responder banner is not recorded.
        assert_eq!(recs[0].payload.as_bytes(), b"GET / HTTP/1.1");
    }

    #[test]
    fn drain_completed_bounds_memory() {
        let mut agg = ArgusAggregator::new(ArgusConfig {
            idle_timeout: SimDuration::from_secs(1),
        });
        agg.emit(udp(0, A, 6000, B, 53, 70));
        agg.emit(udp(10_000, A, 6000, B, 53, 70)); // forces expiry of first
        assert_eq!(agg.drain_completed().len(), 1);
        assert_eq!(agg.open_flows(), 1);
        assert_eq!(agg.finish(SimTime::from_secs(20)).len(), 1);
    }

    #[test]
    fn finish_is_sorted_and_deterministic() {
        let mut agg = ArgusAggregator::default();
        agg.emit(udp(500, A, 6002, B, 53, 70));
        agg.emit(udp(100, A, 6001, B, 53, 70));
        agg.emit(udp(300, A, 6003, B, 53, 70));
        let recs = agg.finish(SimTime::from_secs(10));
        let starts: Vec<u64> = recs.iter().map(|r| r.start.as_millis()).collect();
        assert_eq!(starts, vec![100, 300, 500]);
    }
}
