//! Property tests for the interned data plane: `HostInterner` id↔ip
//! round trips and `FlowTable` columnarisation invariants.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use proptest::prelude::*;
use pw_flow::{FlowRecord, FlowState, FlowTable, HostId, HostInterner, Payload, Proto};
use pw_netsim::{SimDuration, SimTime};

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn ip_from_seed(seed: u64) -> Ipv4Addr {
    let h = mix(seed);
    // A small space so duplicates are common and re-interning is exercised.
    Ipv4Addr::new(10, (h & 1) as u8, ((h >> 1) & 0x3) as u8, (h >> 3) as u8)
}

fn flow_from_seed(seed: u64) -> FlowRecord {
    let h = mix(seed);
    let start = SimTime::from_millis((h >> 16) % 600_000);
    FlowRecord {
        start,
        end: start + SimDuration::from_secs(1 + (h & 0xF)),
        src: ip_from_seed(seed ^ 0xA),
        sport: 1024 + ((h >> 9) & 0xFF) as u16,
        dst: ip_from_seed(seed ^ 0xB),
        dport: 80,
        proto: if h & 0x400 == 0 {
            Proto::Tcp
        } else {
            Proto::Udp
        },
        src_pkts: 1 + (h & 0x3),
        src_bytes: (h >> 40) & 0xFFFF,
        dst_pkts: 1,
        dst_bytes: (h >> 24) & 0xFFFF,
        state: if h & 0x200 == 0 {
            FlowState::SynNoAnswer
        } else {
            FlowState::Established
        },
        payload: Payload::empty(),
    }
}

proptest! {
    #[test]
    fn interner_round_trips_and_is_idempotent(
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..300),
    ) {
        let ips: Vec<Ipv4Addr> = seeds.iter().map(|&s| ip_from_seed(s)).collect();
        let mut interner = HostInterner::new();
        let ids: Vec<HostId> = ips.iter().map(|&ip| interner.intern(ip)).collect();

        // resolve ∘ intern is the identity on addresses.
        for (&ip, &id) in ips.iter().zip(&ids) {
            prop_assert_eq!(interner.resolve(id), ip);
            prop_assert_eq!(interner.get(ip), Some(id));
        }
        // Interning is injective on distinct addresses and idempotent:
        // re-interning everything changes nothing.
        let distinct: HashSet<Ipv4Addr> = ips.iter().copied().collect();
        prop_assert_eq!(interner.len(), distinct.len());
        let before = interner.len();
        for (&ip, &id) in ips.iter().zip(&ids) {
            prop_assert_eq!(interner.intern(ip), id);
        }
        prop_assert_eq!(interner.len(), before);
        // Ids are dense: ips()[id.index()] inverts resolve.
        for &id in &ids {
            prop_assert_eq!(interner.ips()[id.index()], interner.resolve(id));
        }
    }

    #[test]
    fn table_build_preserves_flows_and_order_is_a_permutation(
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..200),
    ) {
        let flows: Vec<FlowRecord> = seeds.iter().map(|&s| flow_from_seed(s)).collect();
        let table = FlowTable::from_records(&flows);

        prop_assert_eq!(table.len(), flows.len());
        // Raw rows reproduce the input verbatim, in input order.
        for (row, f) in flows.iter().enumerate() {
            prop_assert_eq!(&table.record(row), f);
        }
        // The sorted index is a permutation of 0..len …
        let mut perm: Vec<u32> = table.order().to_vec();
        perm.sort_unstable();
        let identity: Vec<u32> = (0..flows.len() as u32).collect();
        prop_assert_eq!(perm, identity);
        // … and walking it yields the canonical processing order.
        let mut expected = flows.clone();
        expected.sort_by_key(|f| (f.start, f.src, f.dst, f.sport, f.dport));
        prop_assert_eq!(table.to_records(), expected);
        // The interner covers exactly the endpoint addresses.
        let endpoints: HashSet<Ipv4Addr> =
            flows.iter().flat_map(|f| [f.src, f.dst]).collect();
        let interned: HashSet<Ipv4Addr> = table.hosts().ips().iter().copied().collect();
        prop_assert_eq!(interned, endpoints);
    }
}
