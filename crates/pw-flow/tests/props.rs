//! Property-based tests for the Argus substrate.

use proptest::prelude::*;
use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::{ArgusAggregator, FlowRecord, Packet, PacketSink, Payload, Proto, TcpFlags};
use pw_netsim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

fn ip_strategy() -> impl Strategy<Value = Ipv4Addr> {
    (1u8..250, 0u8..250, 0u8..250, 1u8..250).prop_map(|(a, b, c, d)| Ipv4Addr::new(a, b, c, d))
}

fn outcome_strategy() -> impl Strategy<Value = ConnOutcome> {
    prop_oneof![
        (0u64..2_000_000, 0u64..2_000_000).prop_map(|(u, d)| ConnOutcome::Established {
            bytes_up: u,
            bytes_down: d
        }),
        Just(ConnOutcome::NoAnswer),
        Just(ConnOutcome::Rejected),
    ]
}

fn udp_outcome_strategy() -> impl Strategy<Value = ConnOutcome> {
    // Datagrams above the MSS fragment into multiple packets, so the
    // packet-count assertion below holds only for single-MTU payloads.
    prop_oneof![
        (0u64..1_400, 0u64..1_400).prop_map(|(u, d)| ConnOutcome::UdpExchange {
            bytes_up: u,
            bytes_down: d
        }),
        (0u64..1_400, 0u32..3).prop_map(|(u, r)| ConnOutcome::UdpNoReply {
            bytes_up: u,
            retries: r
        }),
    ]
}

proptest! {
    /// Any synthesized TCP connection aggregates to exactly one flow whose
    /// byte totals cover the requested application bytes.
    #[test]
    fn tcp_connection_aggregates_to_one_flow(
        src in ip_strategy(),
        dst in ip_strategy(),
        sport in 1024u16..65000,
        dport in 1u16..1024,
        outcome in outcome_strategy(),
        start_s in 0u64..20_000,
        dur_s in 1u64..600,
    ) {
        prop_assume!(src != dst);
        let spec = ConnSpec::tcp(SimTime::from_secs(start_s), src, sport, dst, dport)
            .outcome(outcome)
            .duration(SimDuration::from_secs(dur_s));
        let mut agg = ArgusAggregator::default();
        emit_connection(&mut agg, &spec);
        let flows = agg.finish(SimTime::from_secs(start_s + dur_s + 7200));
        prop_assert_eq!(flows.len(), 1);
        let f = &flows[0];
        prop_assert_eq!(f.src, src);
        prop_assert_eq!(f.dst, dst);
        prop_assert_eq!(f.proto, Proto::Tcp);
        match outcome {
            ConnOutcome::Established { bytes_up, bytes_down } => {
                prop_assert!(!f.is_failed());
                prop_assert!(f.src_bytes >= bytes_up);
                prop_assert!(f.dst_bytes >= bytes_down);
            }
            ConnOutcome::NoAnswer | ConnOutcome::Rejected => prop_assert!(f.is_failed()),
            _ => unreachable!("tcp outcomes only"),
        }
        prop_assert!(f.end >= f.start);
    }

    /// UDP variants: reply iff the outcome exchanges data both ways.
    #[test]
    fn udp_connection_failure_state_matches_outcome(
        src in ip_strategy(),
        dst in ip_strategy(),
        sport in 1024u16..65000,
        outcome in udp_outcome_strategy(),
    ) {
        prop_assume!(src != dst);
        let spec = ConnSpec::udp(SimTime::ZERO, src, sport, dst, 53).outcome(outcome);
        let mut agg = ArgusAggregator::default();
        emit_connection(&mut agg, &spec);
        let flows = agg.finish(SimTime::from_secs(3600));
        prop_assert_eq!(flows.len(), 1);
        match outcome {
            ConnOutcome::UdpExchange { .. } => prop_assert!(!flows[0].is_failed()),
            ConnOutcome::UdpNoReply { retries, .. } => {
                prop_assert!(flows[0].is_failed());
                prop_assert_eq!(flows[0].src_pkts, retries as u64 + 1);
            }
            _ => unreachable!("udp outcomes only"),
        }
    }

    /// Aggregation conserves packets and bytes regardless of interleaving.
    #[test]
    fn aggregation_conserves_totals(specs in prop::collection::vec(
        (ip_strategy(), ip_strategy(), 1024u16..65000, outcome_strategy(), 0u64..5_000),
        1..20,
    )) {
        let mut packets: Vec<Packet> = Vec::new();
        for (i, (src, dst, sport, outcome, t)) in specs.iter().enumerate() {
            prop_assume!(src != dst);
            let spec = ConnSpec::tcp(SimTime::from_secs(*t), *src, *sport, *dst, 80 + i as u16)
                .outcome(*outcome);
            emit_connection(&mut packets, &spec);
        }
        let (mut pk, mut by) = (0u64, 0u64);
        let mut agg = ArgusAggregator::default();
        for p in &packets {
            pk += p.pkts as u64;
            by += p.bytes;
            agg.emit(*p);
        }
        let flows = agg.finish(SimTime::from_secs(20_000));
        let fpk: u64 = flows.iter().map(|f| f.src_pkts + f.dst_pkts).sum();
        let fby: u64 = flows.iter().map(|f| f.src_bytes + f.dst_bytes).sum();
        prop_assert_eq!(pk, fpk);
        prop_assert_eq!(by, fby);
    }

    /// CSV persistence round-trips arbitrary flow records.
    #[test]
    fn csv_round_trip(records in prop::collection::vec(
        (
            ip_strategy(), ip_strategy(), 1u16..65000, 1u16..65000,
            0u64..86_400_000, 0u64..600_000,
            0u64..1_000, 0u64..10_000_000, 0u64..1_000, 0u64..10_000_000,
            prop::collection::vec(any::<u8>(), 0..64),
            0usize..6,
        ),
        0..25,
    )) {
        use pw_flow::FlowState;
        let states = [
            FlowState::Established,
            FlowState::SynNoAnswer,
            FlowState::Rejected,
            FlowState::ResetAfterData,
            FlowState::UdpReplied,
            FlowState::UdpSilent,
        ];
        let flows: Vec<FlowRecord> = records
            .into_iter()
            .map(|(src, dst, sport, dport, start, dur, sp, sb, dp, db, payload, st)| FlowRecord {
                start: SimTime::from_millis(start),
                end: SimTime::from_millis(start + dur),
                src,
                sport,
                dst,
                dport,
                proto: if st >= 4 { Proto::Udp } else { Proto::Tcp },
                src_pkts: sp,
                src_bytes: sb,
                dst_pkts: dp,
                dst_bytes: db,
                state: states[st],
                payload: Payload::capture(&payload),
            })
            .collect();
        let mut buf = Vec::new();
        pw_flow::csvio::write_flows(&mut buf, &flows).unwrap();
        let back = pw_flow::csvio::read_flows(buf.as_slice()).unwrap();
        prop_assert_eq!(back, flows);
    }

    /// Payload capture truncates at 64 bytes and round-trips content.
    #[test]
    fn payload_capture_prefix(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let p = Payload::capture(&data);
        let expect = &data[..data.len().min(64)];
        prop_assert_eq!(p.as_bytes(), expect);
    }

    /// TCP flag algebra: union contains both operands.
    #[test]
    fn flag_union_contains_operands(a in 0u8..5, b in 0u8..5) {
        let flags = [TcpFlags::SYN, TcpFlags::ACK, TcpFlags::FIN, TcpFlags::RST, TcpFlags::PSH];
        let u = flags[a as usize] | flags[b as usize];
        prop_assert!(u.contains(flags[a as usize]));
        prop_assert!(u.contains(flags[b as usize]));
    }
}

#[test]
fn sink_trait_object_works() {
    let spec = ConnSpec::udp(
        SimTime::ZERO,
        Ipv4Addr::new(1, 1, 1, 1),
        9,
        Ipv4Addr::new(2, 2, 2, 2),
        53,
    );
    let mut v: Vec<Packet> = Vec::new();
    let sink: &mut dyn PacketSink = &mut v;
    emit_connection(sink, &spec);
    assert!(!v.is_empty());
}
