//! Seeded in-process TCP chaos proxy: byte-level fault injection between
//! an exporter client and the detection server.
//!
//! [`ChaosConfig`](crate::ChaosConfig) injects faults at the *flow-record*
//! level and [`ConnPlan`](crate::ConnPlan) at the *connection* level; this
//! module goes one layer down, to the byte stream itself. A [`ChaosProxy`]
//! listens on an ephemeral loopback port and forwards every accepted
//! connection to a real upstream server while injecting, per connection:
//!
//! - **bit corruption** — seeded single-bit flips at fixed byte offsets of
//!   the client→server stream, which the version-2 `PWFS` frame CRC must
//!   catch;
//! - **mid-frame cuts** — the connection is severed after an exact number
//!   of forwarded bytes, almost always inside a frame;
//! - **stalls** — a fixed sleep when the stream crosses a seeded offset,
//!   exercising server read deadlines;
//! - **partial writes** — forwarding in small seeded chunks so no peer can
//!   assume a frame arrives in one `read`.
//!
//! Every fault position is derived from [`ProxyFaults::seed`] and the
//! connection's accept index *before* any bytes move, so the fault
//! sequence is a pure function of the seed: same seed, same flipped bits,
//! same severed byte offsets, same counters — regardless of TCP segment
//! boundaries or scheduler timing. Only the first
//! [`faulty_conns`](ProxyFaults::faulty_conns) connections receive
//! faults; later connections (the retries) pass through clean, so a
//! resilient client is guaranteed to make progress eventually.
//!
//! Use one proxy per exporter. A proxy plans faults by accept order, and
//! two exporters racing through a shared proxy would make that order —
//! and therefore the fault assignment — depend on the scheduler.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::ChaosRng;

/// What byte-level faults to inject, and into how many connections.
///
/// The default is a faithful passthrough (no faults, no chunking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyFaults {
    /// Seed determining every fault position and mask.
    pub seed: u64,
    /// Connections (in accept order) that receive faults; connections at
    /// index `faulty_conns` and beyond are forwarded clean. Bounding this
    /// guarantees a retrying client eventually gets a clean channel.
    pub faulty_conns: usize,
    /// Single-bit flips injected into the client→server stream of each
    /// faulty connection, at seeded byte offsets inside
    /// [`fault_window`](ProxyFaults::fault_window).
    pub flips_per_conn: usize,
    /// Sever each faulty connection after a seeded number of forwarded
    /// client→server bytes (a mid-frame cut).
    pub cut: bool,
    /// Sleep this long when each faulty connection's client→server
    /// stream crosses a seeded offset. Zero disables stalls. Keep it
    /// below the server's read deadline unless reaping is the point.
    pub stall: Duration,
    /// Fault offsets are drawn uniformly from `0..fault_window` bytes
    /// into the client→server stream. Offsets beyond what the client
    /// actually sends simply never fire.
    pub fault_window: u64,
    /// Forward in seeded chunks of `1..=max_chunk` bytes (both
    /// directions), so peers see partial reads. Zero disables chunking.
    pub max_chunk: usize,
}

impl Default for ProxyFaults {
    fn default() -> Self {
        ProxyFaults {
            seed: 0,
            faulty_conns: 0,
            flips_per_conn: 0,
            cut: false,
            stall: Duration::ZERO,
            fault_window: 64 * 1024,
            max_chunk: 0,
        }
    }
}

/// The fully-derived fault plan for one connection: fixed byte offsets,
/// computed from the seed before any bytes move.
#[derive(Debug, Clone, Default)]
struct ConnFaultPlan {
    /// `(offset, xor mask)` single-bit flips in the client→server stream.
    flips: Vec<(u64, u8)>,
    /// Sever after forwarding exactly this many client→server bytes.
    cut_at: Option<u64>,
    /// Sleep `stall_for` when the stream crosses this offset.
    stall_at: Option<u64>,
    stall_for: Duration,
    /// Chunked-forwarding bound (applies to every connection).
    max_chunk: usize,
    /// Seed for the chunk-size generator (distinct per conn/direction).
    chunk_seed: u64,
}

impl ConnFaultPlan {
    fn derive(faults: &ProxyFaults, conn_idx: u64) -> ConnFaultPlan {
        let mut plan = ConnFaultPlan {
            max_chunk: faults.max_chunk,
            chunk_seed: faults.seed ^ conn_idx.rotate_left(17) ^ 0xC4A5,
            ..ConnFaultPlan::default()
        };
        if conn_idx >= faults.faulty_conns as u64 {
            return plan;
        }
        let mut rng = ChaosRng::new(
            faults
                .seed
                .wrapping_add(conn_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let window = faults.fault_window.max(1) as usize;
        for _ in 0..faults.flips_per_conn {
            let at = rng.below(window) as u64;
            let mask = 1u8 << rng.below(8);
            plan.flips.push((at, mask));
        }
        if faults.cut {
            plan.cut_at = Some(rng.below(window) as u64);
        }
        if faults.stall > Duration::ZERO {
            plan.stall_at = Some(rng.below(window) as u64);
            plan.stall_for = faults.stall;
        }
        plan
    }
}

#[derive(Debug, Default)]
struct Counters {
    conns: AtomicU64,
    flips: AtomicU64,
    cuts: AtomicU64,
    stalls: AtomicU64,
}

/// Snapshot of the faults a proxy actually applied (a fault planned
/// beyond the bytes the client sent never fires).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStats {
    /// Connections accepted.
    pub conns: u64,
    /// Bit flips applied to forwarded bytes.
    pub flips: u64,
    /// Connections severed mid-stream.
    pub cuts: u64,
    /// Stalls slept.
    pub stalls: u64,
}

/// A running byte-level chaos proxy in front of one upstream server.
///
/// Dropping the handle without [`shutdown`](ChaosProxy::shutdown) leaves
/// the accept thread running until process exit; tests should shut down
/// explicitly when they want the listener gone.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts forwarding every
    /// accepted connection to `upstream` with `faults` applied.
    pub fn spawn(upstream: SocketAddr, faults: ProxyFaults) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept_thread = thread::spawn(move || {
            let mut conn_idx = 0u64;
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = conn else { break };
                let Ok(server) = TcpStream::connect(upstream) else {
                    // Upstream gone (e.g. killed mid-test): refuse by
                    // closing; the client's retry policy handles it.
                    continue;
                };
                let plan = ConnFaultPlan::derive(&faults, conn_idx);
                conn_idx += 1;
                accept_counters.conns.fetch_add(1, Ordering::SeqCst);
                pump_connection(client, server, plan, Arc::clone(&accept_counters));
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Faults applied so far.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            conns: self.counters.conns.load(Ordering::SeqCst),
            flips: self.counters.flips.load(Ordering::SeqCst),
            cuts: self.counters.cuts.load(Ordering::SeqCst),
            stalls: self.counters.stalls.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting and joins the accept thread. In-flight
    /// connections drain on their own.
    pub fn shutdown(mut self) -> ProxyStats {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept; the woken iteration sees `stop`.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.stats()
    }
}

/// Spawns the two forwarding pumps for one proxied connection: faulted
/// client→server, clean server→client.
fn pump_connection(client: TcpStream, server: TcpStream, plan: ConnFaultPlan, c: Arc<Counters>) {
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let clean = ConnFaultPlan {
        max_chunk: plan.max_chunk,
        chunk_seed: plan.chunk_seed ^ 0x5C5C,
        ..ConnFaultPlan::default()
    };
    thread::spawn(move || pump(client_r, server, plan, &c));
    thread::spawn(move || pump(server_r, client, clean, &Arc::new(Counters::default())));
}

/// Forwards bytes from `from` to `to`, applying the plan's faults at
/// their exact byte offsets, then shuts both streams down.
fn pump(mut from: TcpStream, mut to: TcpStream, plan: ConnFaultPlan, counters: &Counters) {
    let mut chunk_rng = ChaosRng::new(plan.chunk_seed);
    let mut buf = [0u8; 4096];
    let mut pos = 0u64; // absolute offset of buf[0] in the stream
    let mut stalled = false;
    loop {
        let want = if plan.max_chunk == 0 {
            buf.len()
        } else {
            1 + chunk_rng.below(plan.max_chunk.min(buf.len()))
        };
        let n = match from.read(&mut buf[..want]) {
            Ok(0) => {
                // Clean half-close: propagate it and let the opposite
                // pump keep draining (e.g. the server's final ack).
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(_) => break,
        };
        let end = pos + n as u64;
        // A planned cut truncates this chunk and ends the connection.
        let (fwd, cut_here) = match plan.cut_at {
            Some(cut) if (pos..end).contains(&cut) => ((cut - pos) as usize, true),
            _ => (n, false),
        };
        if let Some(at) = plan.stall_at {
            if !stalled && (pos..end).contains(&at) {
                stalled = true;
                counters.stalls.fetch_add(1, Ordering::SeqCst);
                thread::sleep(plan.stall_for);
            }
        }
        for &(at, mask) in &plan.flips {
            if at >= pos && at < pos + fwd as u64 {
                buf[(at - pos) as usize] ^= mask;
                counters.flips.fetch_add(1, Ordering::SeqCst);
            }
        }
        if to.write_all(&buf[..fwd]).is_err() {
            break;
        }
        if cut_here {
            counters.cuts.fetch_add(1, Ordering::SeqCst);
            break;
        }
        pos = end;
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo server: accepts one connection at a time and writes back
    /// whatever it reads.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut s) = conn else { break };
                let mut buf = [0u8; 1024];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, t)
    }

    fn roundtrip(addr: SocketAddr, payload: &[u8]) -> io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(addr)?;
        s.write_all(payload)?;
        s.shutdown(Shutdown::Write)?;
        let mut out = Vec::new();
        s.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn clean_proxy_is_a_faithful_passthrough() {
        let (upstream, _t) = echo_server();
        let proxy = ChaosProxy::spawn(upstream, ProxyFaults::default()).unwrap();
        let payload: Vec<u8> = (0..2048u32).map(|k| (k % 251) as u8).collect();
        let echoed = roundtrip(proxy.addr(), &payload).unwrap();
        assert_eq!(echoed, payload);
        let stats = proxy.shutdown();
        assert_eq!(stats.flips + stats.cuts + stats.stalls, 0);
    }

    #[test]
    fn chunked_forwarding_preserves_bytes() {
        let (upstream, _t) = echo_server();
        let faults = ProxyFaults {
            seed: 9,
            max_chunk: 7,
            ..ProxyFaults::default()
        };
        let proxy = ChaosProxy::spawn(upstream, faults).unwrap();
        let payload: Vec<u8> = (0..4096u32).map(|k| (k % 239) as u8).collect();
        let echoed = roundtrip(proxy.addr(), &payload).unwrap();
        assert_eq!(echoed, payload);
        proxy.shutdown();
    }

    #[test]
    fn flips_land_at_seeded_offsets() {
        let (upstream, _t) = echo_server();
        let faults = ProxyFaults {
            seed: 1234,
            faulty_conns: 1,
            flips_per_conn: 3,
            fault_window: 512,
            ..ProxyFaults::default()
        };
        let proxy = ChaosProxy::spawn(upstream, faults).unwrap();
        let payload = vec![0u8; 1024];
        let echoed = roundtrip(proxy.addr(), &payload).unwrap();
        let flipped: Vec<usize> = echoed
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != 0)
            .map(|(i, _)| i)
            .collect();
        // The plan is a pure function of the seed, independent of
        // segmentation — derive it again and compare offsets.
        let plan = ConnFaultPlan::derive(&faults, 0);
        let mut expected: Vec<usize> = plan.flips.iter().map(|&(at, _)| at as usize).collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(flipped, expected);
        assert!(!flipped.is_empty());
        assert_eq!(proxy.shutdown().flips, plan.flips.len() as u64);

        // A second connection (index 1 ≥ faulty_conns) is clean.
        let faults2 = ProxyFaults {
            faulty_conns: 1,
            ..faults
        };
        let proxy = ChaosProxy::spawn(upstream, faults2).unwrap();
        let _ = roundtrip(proxy.addr(), &payload).unwrap();
        let clean = roundtrip(proxy.addr(), &payload).unwrap();
        assert_eq!(clean, payload);
        proxy.shutdown();
    }

    #[test]
    fn cuts_sever_after_the_planned_byte() {
        let (upstream, _t) = echo_server();
        let faults = ProxyFaults {
            seed: 77,
            faulty_conns: 1,
            cut: true,
            fault_window: 256,
            ..ProxyFaults::default()
        };
        let plan = ConnFaultPlan::derive(&faults, 0);
        let cut_at = plan.cut_at.unwrap() as usize;
        let proxy = ChaosProxy::spawn(upstream, faults).unwrap();
        let payload = vec![0xAB; 1024];
        let echoed = roundtrip(proxy.addr(), &payload).unwrap_or_default();
        // Everything up to the cut (and nothing after it) came back.
        assert!(
            echoed.len() <= cut_at,
            "echoed {} > cut {}",
            echoed.len(),
            cut_at
        );
        assert_eq!(proxy.shutdown().cuts, 1);
    }
}
