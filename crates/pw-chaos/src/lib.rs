//! Deterministic fault injection for flow streams.
//!
//! The streaming engine in `pw-detect` claims to survive the failure modes
//! of real border monitors: lost export batches, doubled-up collectors,
//! out-of-order delivery, corrupt rows, and feeds that go silent. This
//! crate manufactures those failures *reproducibly*, so the claim is
//! testable: [`inject`] takes a clean flow stream and a seeded
//! [`ChaosConfig`], and returns the faulted event sequence plus an exact
//! [`ChaosSummary`] of every fault applied. Same seed, same faults —
//! a failing chaos test is re-runnable by copying one integer.
//!
//! Faults are applied per flow in a fixed order (drop → corrupt →
//! duplicate), then a bounded reorder pass scrambles delivery order, then
//! [`ChaosEvent::Stall`] markers are interleaved to model a feed going
//! silent (the consumer drives its stall detector from them). Randomness
//! comes from an embedded [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! generator ([`ChaosRng`]) rather than an external RNG crate, so pinned
//! test expectations never shift under a dependency upgrade.
//!
//! [`corrupt_csv`] applies the same idea to serialized flow files: it
//! mangles a seeded selection of data rows (field truncation, extra
//! fields, garbled numbers) to exercise lossy CSV readers.
//!
//! [`ConnPlan`] extends the model to *connection-level* faults for
//! streaming clients: a seeded set of positions at which an exporter's
//! TCP connection to the detection server is severed mid-stream, forcing
//! a reconnect-and-resume through the server's sequence handshake.
//!
//! [`proxy::ChaosProxy`] goes one layer lower still: an in-process TCP
//! proxy that injects *byte-level* faults — seeded bit flips, mid-frame
//! cuts, stalls, and partial writes — between a real client and a real
//! server, to prove the wire protocol's integrity checking and deadline
//! handling end to end.
//!
//! # Examples
//!
//! ```
//! use pw_chaos::{inject, ChaosConfig, ChaosEvent};
//!
//! let flows: Vec<pw_flow::FlowRecord> = Vec::new();
//! let out = inject(&flows, &ChaosConfig { seed: 7, drop: 0.1, ..Default::default() });
//! assert!(out.events.is_empty());
//! assert_eq!(out.summary.input, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proxy;

pub use proxy::{ChaosProxy, ProxyFaults, ProxyStats};

use std::fmt;

use pw_flow::FlowRecord;
use pw_netsim::{SimDuration, SimTime};

/// Deterministic [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
/// generator.
///
/// Deliberately self-contained: chaos tests pin exact fault sequences, and
/// an RNG inherited from a dependency would invalidate them on upgrade.
/// Not cryptographic — it only has to be fast, seedable, and stable.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A generator whose whole future is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        // 53 high bits → uniform in [0, 1) with full double precision.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform index in `0..n`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A rejected chaos configuration (probability outside `[0, 1]`, or a
/// zero stall interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfigError {
    /// Which knob was rejected.
    pub field: &'static str,
    /// The offending value.
    pub value: f64,
}

impl fmt::Display for ChaosConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chaos {} must be a probability in [0, 1], got {}",
            self.field, self.value
        )
    }
}

impl std::error::Error for ChaosConfigError {}

/// What faults to inject, and how often. All rates default to zero — the
/// default config is a faithful passthrough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed determining the entire fault sequence.
    pub seed: u64,
    /// Probability a flow is silently lost (a dropped export batch).
    pub drop: f64,
    /// Probability a delivered flow is delivered twice (doubled-up
    /// collectors replaying a batch).
    pub duplicate: f64,
    /// Probability a delivered flow is corrupted into a record that fails
    /// [`FlowRecord::validate`] (end before start, or byte counts without
    /// packets) — the in-memory analogue of a garbled export row.
    pub corrupt: f64,
    /// Bounded reorder: each delivery may be swapped up to this many
    /// positions ahead. Zero keeps arrival order. (Chained swaps can
    /// occasionally displace a record slightly further; the bound is on
    /// each individual swap.)
    pub reorder_window: usize,
    /// After every `n` deliveries, insert a [`ChaosEvent::Stall`] marking
    /// the feed silent for [`stall_for`](ChaosConfig::stall_for).
    pub stall_every: Option<usize>,
    /// Length of each injected stall.
    pub stall_for: SimDuration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder_window: 0,
            stall_every: None,
            stall_for: SimDuration::from_mins(5),
        }
    }
}

/// Rejects anything that is not a well-formed probability: NaN and
/// negative values explicitly, not as a side effect of a range check.
fn probability_ok(field: &'static str, value: f64) -> Result<(), ChaosConfigError> {
    if value.is_nan() || !(0.0..=1.0).contains(&value) {
        return Err(ChaosConfigError { field, value });
    }
    Ok(())
}

impl ChaosConfig {
    /// Checks every probability knob. NaN and negative rates are rejected
    /// explicitly — a NaN would otherwise silently disable its fault
    /// (every `chance(NaN)` comparison is false), which is the worst
    /// failure mode for a fault injector: tests that pass because nothing
    /// was injected.
    pub fn validate(&self) -> Result<(), ChaosConfigError> {
        for (field, value) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("corrupt", self.corrupt),
        ] {
            probability_ok(field, value)?;
        }
        if self.stall_every == Some(0) {
            return Err(ChaosConfigError {
                field: "stall_every",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// One element of a faulted feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosEvent {
    /// A flow record arrives (possibly duplicated, corrupted, reordered).
    Deliver(FlowRecord),
    /// The feed goes silent for this long. Consumers advance their feed
    /// clock and poll their stall detector.
    Stall(SimDuration),
}

/// Exact accounting of the faults [`inject`] applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Flows in the clean input.
    pub input: usize,
    /// Deliver events emitted (input − dropped + duplicated).
    pub delivered: usize,
    /// Flows silently lost.
    pub dropped: usize,
    /// Extra copies delivered.
    pub duplicated: usize,
    /// Deliveries corrupted into invalid records.
    pub corrupted: usize,
    /// Deliveries that left their original position in the reorder pass.
    pub displaced: usize,
    /// Stall markers inserted.
    pub stalls: usize,
}

/// A faulted feed plus its accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// The event sequence to replay into a consumer.
    pub events: Vec<ChaosEvent>,
    /// What was done to produce it.
    pub summary: ChaosSummary,
}

/// Corrupts one record so it fails [`FlowRecord::validate`], in a way
/// chosen by `rng`.
fn corrupt_record(mut f: FlowRecord, rng: &mut ChaosRng) -> FlowRecord {
    if rng.below(2) == 0 && f.start > SimTime::ZERO {
        // Ends before it starts.
        f.end = SimTime::from_millis(f.start.as_millis() - 1);
    } else {
        // Bytes without packets.
        f.src_pkts = 0;
        f.src_bytes = f.src_bytes.max(1);
    }
    f
}

/// Runs `flows` through the configured fault model and returns the faulted
/// event sequence plus exact accounting. Deterministic in
/// [`ChaosConfig::seed`].
///
/// # Errors
///
/// [`ChaosConfigError`] if a probability lies outside `[0, 1]` or
/// `stall_every` is zero.
pub fn try_inject(
    flows: &[FlowRecord],
    cfg: &ChaosConfig,
) -> Result<ChaosOutcome, ChaosConfigError> {
    cfg.validate()?;
    let mut rng = ChaosRng::new(cfg.seed);
    let mut summary = ChaosSummary {
        input: flows.len(),
        ..Default::default()
    };

    // Per-flow faults, in fixed order: drop → corrupt → duplicate.
    let mut deliveries: Vec<FlowRecord> = Vec::with_capacity(flows.len());
    for &f in flows {
        if rng.chance(cfg.drop) {
            summary.dropped += 1;
            continue;
        }
        let f = if rng.chance(cfg.corrupt) {
            summary.corrupted += 1;
            corrupt_record(f, &mut rng)
        } else {
            f
        };
        deliveries.push(f);
        if rng.chance(cfg.duplicate) {
            summary.duplicated += 1;
            deliveries.push(f);
        }
    }

    // Bounded reorder pass.
    if cfg.reorder_window > 0 && deliveries.len() > 1 {
        let before = deliveries.clone();
        let n = deliveries.len();
        for i in 0..n {
            let span = cfg.reorder_window.min(n - 1 - i);
            if span == 0 {
                continue;
            }
            let j = i + rng.below(span + 1);
            deliveries.swap(i, j);
        }
        summary.displaced = deliveries
            .iter()
            .zip(&before)
            .filter(|(a, b)| a != b)
            .count();
    }

    summary.delivered = deliveries.len();

    // Interleave stall markers.
    let mut events = Vec::with_capacity(deliveries.len() + 8);
    match cfg.stall_every {
        Some(every) => {
            for (k, f) in deliveries.into_iter().enumerate() {
                if k > 0 && k % every == 0 {
                    events.push(ChaosEvent::Stall(cfg.stall_for));
                    summary.stalls += 1;
                }
                events.push(ChaosEvent::Deliver(f));
            }
        }
        None => events.extend(deliveries.into_iter().map(ChaosEvent::Deliver)),
    }

    Ok(ChaosOutcome { events, summary })
}

/// [`try_inject`] for configs known valid.
///
/// # Panics
///
/// Panics on an invalid config; use [`try_inject`] to handle that as a
/// value.
pub fn inject(flows: &[FlowRecord], cfg: &ChaosConfig) -> ChaosOutcome {
    try_inject(flows, cfg).expect("invalid ChaosConfig")
}

/// Seeded plan of connection-level faults for a streaming exporter
/// client: after which deliveries to sever the connection and reconnect.
///
/// The plan is a set of distinct cut positions in `1..deliveries`
/// (never before the first delivery, never after the last), chosen by a
/// [`ChaosRng`] — same seed, same cuts. The client consults
/// [`cut_after`](ConnPlan::cut_after) while streaming; the server's
/// sequence-resume handshake turns each cut into a reconnect that must
/// not lose or double-apply a single flow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnPlan {
    cuts: Vec<usize>,
}

impl ConnPlan {
    /// Plans `cuts` disconnects over a stream of `deliveries` flows.
    /// Requests beyond the number of interior positions are capped.
    pub fn new(seed: u64, deliveries: usize, cuts: usize) -> Self {
        let interior = deliveries.saturating_sub(1);
        let cuts = cuts.min(interior);
        let mut rng = ChaosRng::new(seed);
        let mut chosen = Vec::with_capacity(cuts);
        while chosen.len() < cuts {
            let p = 1 + rng.below(interior);
            if !chosen.contains(&p) {
                chosen.push(p);
            }
        }
        chosen.sort_unstable();
        ConnPlan { cuts: chosen }
    }

    /// A plan with no disconnects.
    pub fn none() -> Self {
        ConnPlan { cuts: Vec::new() }
    }

    /// Whether the connection should be severed after delivering the
    /// flow at position `k` (0-based).
    pub fn cut_after(&self, k: usize) -> bool {
        self.cuts.binary_search(&(k + 1)).is_ok()
    }

    /// The planned cut positions, ascending.
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }
}

/// Mangles a seeded selection of data rows in a serialized flow file
/// (see [`pw_flow::csvio`]), leaving the header line alone. Returns the
/// mangled text and how many rows were corrupted. Three corruption shapes
/// rotate deterministically: a truncated row (too few fields), a row with
/// a junk field appended (too many), and a garbled leading timestamp.
///
/// # Errors
///
/// [`ChaosConfigError`] if `prob` is NaN, negative, or above 1.
pub fn try_corrupt_csv(
    text: &str,
    seed: u64,
    prob: f64,
) -> Result<(String, usize), ChaosConfigError> {
    probability_ok("corrupt_csv prob", prob)?;
    let mut rng = ChaosRng::new(seed);
    let mut corrupted = 0usize;
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.is_empty() || !rng.chance(prob) {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        corrupted += 1;
        match rng.below(3) {
            0 => {
                // Too few fields: cut at the last comma.
                let cut = line.rfind(',').unwrap_or(0);
                out.push_str(&line[..cut]);
            }
            1 => {
                // Too many fields.
                out.push_str(line);
                out.push_str(",junk");
            }
            _ => {
                // Garbled leading timestamp.
                out.push('x');
                out.push_str(line);
            }
        }
        out.push('\n');
    }
    Ok((out, corrupted))
}

/// [`try_corrupt_csv`] for probabilities known valid.
///
/// # Panics
///
/// Panics if `prob` is NaN, negative, or above 1; use
/// [`try_corrupt_csv`] to handle that as a value.
pub fn corrupt_csv(text: &str, seed: u64, prob: f64) -> (String, usize) {
    try_corrupt_csv(text, seed, prob).expect("invalid corrupt_csv probability")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::{FlowState, Payload, Proto};
    use std::net::Ipv4Addr;

    fn flow(k: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime::from_secs(k),
            end: SimTime::from_secs(k + 1),
            src: Ipv4Addr::new(10, 0, 0, 1),
            sport: 40_000 + k as u16,
            dst: Ipv4Addr::new(60, 0, 0, 1),
            dport: 80,
            proto: Proto::Tcp,
            src_pkts: 2,
            src_bytes: 100,
            dst_pkts: 1,
            dst_bytes: 50,
            state: FlowState::Established,
            payload: Payload::empty(),
        }
    }

    fn feed(n: u64) -> Vec<FlowRecord> {
        (0..n).map(flow).collect()
    }

    #[test]
    fn default_config_is_a_passthrough() {
        let flows = feed(50);
        let out = inject(&flows, &ChaosConfig::default());
        assert_eq!(
            out.summary,
            ChaosSummary {
                input: 50,
                delivered: 50,
                ..Default::default()
            }
        );
        let delivered: Vec<FlowRecord> = out
            .events
            .iter()
            .map(|e| match e {
                ChaosEvent::Deliver(f) => *f,
                ChaosEvent::Stall(_) => panic!("no stalls configured"),
            })
            .collect();
        assert_eq!(delivered, flows);
    }

    #[test]
    fn same_seed_same_faults_different_seed_different_faults() {
        let flows = feed(200);
        let cfg = ChaosConfig {
            seed: 42,
            drop: 0.1,
            duplicate: 0.1,
            corrupt: 0.05,
            reorder_window: 4,
            stall_every: Some(50),
            ..Default::default()
        };
        let a = inject(&flows, &cfg);
        let b = inject(&flows, &cfg);
        assert_eq!(a, b, "identical seeds must replay identically");
        let c = inject(&flows, &ChaosConfig { seed: 43, ..cfg });
        assert_ne!(a.summary, c.summary);
    }

    #[test]
    fn summary_accounts_for_every_event() {
        let flows = feed(500);
        let cfg = ChaosConfig {
            seed: 7,
            drop: 0.2,
            duplicate: 0.15,
            corrupt: 0.1,
            reorder_window: 3,
            stall_every: Some(40),
            ..Default::default()
        };
        let out = inject(&flows, &cfg);
        let s = out.summary;
        assert_eq!(s.input, 500);
        assert_eq!(s.delivered, s.input - s.dropped + s.duplicated);
        assert!(s.dropped > 0 && s.duplicated > 0 && s.corrupted > 0);
        assert!(s.displaced > 0 && s.stalls > 0);
        let delivers = out
            .events
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Deliver(_)))
            .count();
        let stalls = out.events.len() - delivers;
        assert_eq!(delivers, s.delivered);
        assert_eq!(stalls, s.stalls);
    }

    #[test]
    fn corrupted_records_fail_validation() {
        let flows = feed(100);
        let cfg = ChaosConfig {
            seed: 3,
            corrupt: 1.0,
            ..Default::default()
        };
        let out = inject(&flows, &cfg);
        assert_eq!(out.summary.corrupted, 100);
        for e in &out.events {
            let ChaosEvent::Deliver(f) = e else {
                unreachable!()
            };
            assert!(f.validate().is_err(), "{f:?} should be invalid");
        }
    }

    #[test]
    fn reorder_displacement_is_bounded_per_swap() {
        let flows = feed(300);
        let cfg = ChaosConfig {
            seed: 11,
            reorder_window: 5,
            ..Default::default()
        };
        let out = inject(&flows, &cfg);
        assert_eq!(out.summary.delivered, 300);
        // Every input flow is still present exactly once.
        let mut starts: Vec<u64> = out
            .events
            .iter()
            .map(|e| match e {
                ChaosEvent::Deliver(f) => f.start.as_millis(),
                ChaosEvent::Stall(_) => unreachable!(),
            })
            .collect();
        starts.sort_unstable();
        let expected: Vec<u64> = (0..300).map(|k| k * 1000).collect();
        assert_eq!(starts, expected);
    }

    #[test]
    fn invalid_config_is_refused() {
        let bad = ChaosConfig {
            drop: 1.5,
            ..Default::default()
        };
        let err = try_inject(&[], &bad).unwrap_err();
        assert_eq!(err.field, "drop");
        assert!(err.to_string().contains("1.5"));
        let bad = ChaosConfig {
            stall_every: Some(0),
            ..Default::default()
        };
        assert!(try_inject(&[], &bad).is_err());
    }

    #[test]
    fn nan_probabilities_are_rejected_per_knob() {
        // A NaN rate silently disables its fault (`chance(NaN)` is always
        // false); each knob must refuse it as a typed error instead.
        let nan = f64::NAN;
        let cases = [
            (
                "drop",
                ChaosConfig {
                    drop: nan,
                    ..Default::default()
                },
            ),
            (
                "duplicate",
                ChaosConfig {
                    duplicate: nan,
                    ..Default::default()
                },
            ),
            (
                "corrupt",
                ChaosConfig {
                    corrupt: nan,
                    ..Default::default()
                },
            ),
        ];
        for (field, cfg) in cases {
            let err = cfg.validate().unwrap_err();
            assert_eq!(err.field, field);
            assert!(err.value.is_nan());
        }
    }

    #[test]
    fn negative_probabilities_are_rejected_per_knob() {
        let cases = [
            (
                "drop",
                ChaosConfig {
                    drop: -0.1,
                    ..Default::default()
                },
            ),
            (
                "duplicate",
                ChaosConfig {
                    duplicate: -1.0,
                    ..Default::default()
                },
            ),
            (
                "corrupt",
                ChaosConfig {
                    corrupt: -f64::EPSILON,
                    ..Default::default()
                },
            ),
        ];
        for (field, cfg) in cases {
            let err = cfg.validate().unwrap_err();
            assert_eq!(err.field, field, "negative {field} must be refused");
            assert!(err.value < 0.0);
        }
    }

    #[test]
    fn corrupt_csv_rejects_nan_and_negative_probabilities() {
        let err = try_corrupt_csv("h\na,b\n", 1, f64::NAN).unwrap_err();
        assert_eq!(err.field, "corrupt_csv prob");
        assert!(err.value.is_nan());
        let err = try_corrupt_csv("h\na,b\n", 1, -0.5).unwrap_err();
        assert_eq!(err.value, -0.5);
        let err = try_corrupt_csv("h\na,b\n", 1, 2.0).unwrap_err();
        assert_eq!(err.value, 2.0);
        assert!(try_corrupt_csv("h\na,b\n", 1, 0.0).is_ok());
        assert!(try_corrupt_csv("h\na,b\n", 1, 1.0).is_ok());
    }

    #[test]
    fn conn_plan_is_seeded_bounded_and_distinct() {
        let plan = ConnPlan::new(99, 200, 3);
        assert_eq!(plan, ConnPlan::new(99, 200, 3), "same seed, same cuts");
        assert_ne!(plan, ConnPlan::new(100, 200, 3));
        assert_eq!(plan.cuts().len(), 3);
        for w in plan.cuts().windows(2) {
            assert!(w[0] < w[1], "cuts must be distinct and sorted");
        }
        for &c in plan.cuts() {
            assert!((1..200).contains(&c), "cut {c} outside the stream");
        }
        let hits = (0..200).filter(|&k| plan.cut_after(k)).count();
        assert_eq!(hits, 3);

        // Degenerate streams cap the cut count instead of spinning.
        assert_eq!(ConnPlan::new(1, 1, 5).cuts().len(), 0);
        assert_eq!(ConnPlan::new(1, 3, 10).cuts().len(), 2);
        assert!(ConnPlan::none().cuts().is_empty());
    }

    #[test]
    fn corrupt_csv_mangles_only_data_rows() {
        let flows = feed(30);
        let mut buf = Vec::new();
        pw_flow::csvio::write_flows(&mut buf, &flows).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (mangled, corrupted) = corrupt_csv(&text, 5, 0.3);
        assert!(corrupted > 0);
        let header = text.lines().next().unwrap();
        assert_eq!(mangled.lines().next().unwrap(), header, "header untouched");
        // Deterministic in the seed.
        assert_eq!(corrupt_csv(&text, 5, 0.3), (mangled.clone(), corrupted));
        // The lossy reader quarantines exactly the mangled rows.
        let (records, errors) = pw_flow::csvio::read_flows_lossy(mangled.as_bytes()).unwrap();
        assert_eq!(errors.len(), corrupted);
        assert_eq!(records.len(), 30 - corrupted);
    }
}
