//! `pw-lint` driver: scans the workspace, applies `lint.toml`, reports.
//!
//! ```text
//! pw-lint [--root DIR] [--allowlist FILE] [--rules D1,D3] [--json]
//!         [--fix-allowlist] [--deps] [--quiet]
//! ```
//!
//! Exit codes: 0 clean (violations all allowlisted), 1 violations (or
//! stale allowlist entries), 2 usage/IO error.

use pw_lint::{allowlist, deps, diag::RuleId, Diagnostic};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    allowlist: PathBuf,
    rules: Vec<RuleId>,
    json: bool,
    fix_allowlist: bool,
    deps: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: pw-lint [--root DIR] [--allowlist FILE] [--rules D1,..,C5]\n\
     \x20              [--json] [--fix-allowlist] [--deps] [--quiet]\n\
     \n\
     Determinism & panic-safety lints for the peerwatch workspace:\n\
     \x20 D1  HashMap/HashSet iteration order leaking into output\n\
     \x20 D2  nondeterminism sources (wall clock, thread id, ambient RNG)\n\
     \x20 D3  panic paths in ingest-facing library code\n\
     \x20 D4  float comparison hazards in detection math\n\
     \n\
     Concurrency & resource-safety lints (scope-aware, evidence-token):\n\
     \x20 C1  blocking socket I/O without deadline evidence in the function\n\
     \x20 C2  lock discipline: poisoning panics, nested guard acquisition\n\
     \x20 C3  unbounded growth: mpsc::channel(), uncapped growth in loops\n\
     \x20 C4  detached threads (JoinHandle dropped)\n\
     \x20 C5  non-atomic persistent writes (no tmp+rename evidence)\n\
     \n\
     \x20 --fix-allowlist   write a lint.toml baseline for current violations\n\
     \x20 --deps            also run the dependency/license policy check\n\
     \x20 --json            machine-readable diagnostics on stdout"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        allowlist: PathBuf::new(),
        rules: RuleId::ALL.to_vec(),
        json: false,
        fix_allowlist: false,
        deps: false,
        quiet: false,
    };
    let mut allowlist_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory argument")?);
            }
            "--allowlist" => {
                opts.allowlist =
                    PathBuf::from(args.next().ok_or("--allowlist needs a file argument")?);
                allowlist_set = true;
            }
            "--rules" => {
                let spec = args.next().ok_or("--rules needs a comma-separated list")?;
                opts.rules = spec
                    .split(',')
                    .map(|s| {
                        RuleId::parse(s.trim())
                            .ok_or_else(|| format!("unknown rule id `{}`", s.trim()))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--json" => opts.json = true,
            "--fix-allowlist" => opts.fix_allowlist = true,
            "--deps" => opts.deps = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !allowlist_set {
        opts.allowlist = opts.root.join("lint.toml");
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pw-lint: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("pw-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    let files = pw_lint::scan_workspace(&opts.root)
        .map_err(|e| format!("scanning {}: {e}", opts.root.display()))?;
    if files.is_empty() {
        return Err(format!(
            "no Rust sources under {} (expected crates/*/src and src/)",
            opts.root.display()
        ));
    }

    let mut diags: Vec<Diagnostic> = pw_lint::lint_files(&files)
        .into_iter()
        .filter(|d| opts.rules.contains(&d.rule))
        .collect();

    if opts.fix_allowlist {
        let entries: Vec<allowlist::AllowEntry> = diags
            .iter()
            .map(|d| allowlist::AllowEntry {
                rule: d.rule.as_str().to_owned(),
                path: d.path.clone(),
                contains: Some(d.snippet.clone()),
                line: None,
                reason: "TODO: justify".to_owned(),
            })
            .collect();
        std::fs::write(&opts.allowlist, allowlist::emit(&entries))
            .map_err(|e| format!("writing {}: {e}", opts.allowlist.display()))?;
        println!(
            "pw-lint: wrote {} baseline entr{} to {} — replace every `TODO: justify` before merging",
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" },
            opts.allowlist.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let entries = match std::fs::read_to_string(&opts.allowlist) {
        Ok(text) => allowlist::parse(&text).map_err(|e| e.to_string())?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("reading {}: {e}", opts.allowlist.display())),
    };
    let todo_entries = entries
        .iter()
        .filter(|e| e.reason.trim() == "TODO: justify")
        .count();
    let stale = pw_lint::apply_allowlist(&mut diags, &entries);

    let violations = diags.iter().filter(|d| !d.allowed).count();
    let allowed = diags.len() - violations;
    let files_hit: std::collections::BTreeSet<&str> = diags
        .iter()
        .filter(|d| !d.allowed)
        .map(|d| d.path.as_str())
        .collect();

    let deps_report = if opts.deps {
        Some(run_deps(opts)?)
    } else {
        None
    };
    let deps_bad = deps_report.as_ref().is_some_and(|r| !r.ok());

    if opts.json {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push_str(&format!(
            "],\"violations\":{violations},\"allowed\":{allowed},\"stale_allow_entries\":{stale},\"todo_allow_entries\":{todo_entries}"
        ));
        if let Some(r) = &deps_report {
            out.push_str(&format!(
                ",\"deps\":{{\"packages\":{},\"manifests\":{},\"violations\":[",
                r.packages_checked, r.manifests_checked
            ));
            for (i, v) in r.violations.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&pw_lint::diag::json_str(v));
            }
            out.push_str("]}");
        }
        out.push('}');
        println!("{out}");
    } else {
        if !opts.quiet {
            for d in &diags {
                if !d.allowed {
                    println!("{}", d.render());
                }
            }
            if stale > 0 {
                println!(
                    "pw-lint: {stale} stale allowlist entr{} in {} match nothing — delete them",
                    if stale == 1 { "y" } else { "ies" },
                    opts.allowlist.display()
                );
            }
            if todo_entries > 0 {
                println!(
                    "pw-lint: {todo_entries} allowlist entr{} still say `TODO: justify`",
                    if todo_entries == 1 { "y" } else { "ies" }
                );
            }
            if let Some(r) = &deps_report {
                for v in &r.violations {
                    println!("deps: {v}");
                }
                println!(
                    "pw-lint deps: {} packages, {} manifests checked, {} violation(s)",
                    r.packages_checked,
                    r.manifests_checked,
                    r.violations.len()
                );
            }
        }
        // The violation-count summary CI greps for.
        println!(
            "pw-lint: {violations} violation(s) across {} file(s) ({allowed} allowed by {}, {stale} stale allow entr{})",
            files_hit.len(),
            opts.allowlist.display(),
            if stale == 1 { "y" } else { "ies" }
        );
    }

    let fail = violations > 0 || stale > 0 || todo_entries > 0 || deps_bad;
    Ok(if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn run_deps(opts: &Options) -> Result<deps::DepsReport, String> {
    let lock_path = opts.root.join("Cargo.lock");
    let lock = std::fs::read_to_string(&lock_path)
        .map_err(|e| format!("reading {}: {e}", lock_path.display()))?;
    let mut manifests: Vec<(String, String)> = Vec::new();
    let root_manifest = opts.root.join("Cargo.toml");
    manifests.push((
        "Cargo.toml".to_owned(),
        std::fs::read_to_string(&root_manifest)
            .map_err(|e| format!("reading {}: {e}", root_manifest.display()))?,
    ));
    let crates_dir = opts.root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        dirs.sort();
        for d in dirs {
            let m = d.join("Cargo.toml");
            if m.is_file() {
                let rel = m
                    .strip_prefix(&opts.root)
                    .unwrap_or(&m)
                    .to_string_lossy()
                    .replace('\\', "/");
                manifests.push((
                    rel,
                    std::fs::read_to_string(&m)
                        .map_err(|e| format!("reading {}: {e}", m.display()))?,
                ));
            }
        }
    }
    Ok(deps::check(&lock, &manifests))
}
