//! Diagnostics: rule identifiers, findings, and text/JSON rendering.

use std::fmt;

/// Stable rule identifiers. These are the contract: they appear in
/// diagnostics, in `lint.toml` allow entries, and in DESIGN.md §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `HashMap`/`HashSet` iteration order leaking into output.
    D1,
    /// Nondeterminism source (wall clock, thread id, ambient RNG).
    D2,
    /// Panic path in ingest-facing library code.
    D3,
    /// Float comparison hazard in detection math.
    D4,
    /// Blocking socket I/O in the service path without a deadline.
    C1,
    /// Lock discipline: poisoning panics and nested guard acquisition.
    C2,
    /// Unbounded growth in streaming/service code.
    C3,
    /// Detached thread: `thread::spawn` whose `JoinHandle` is dropped.
    C4,
    /// Non-atomic persistent write: file creation without tmp+rename.
    C5,
}

impl RuleId {
    pub const ALL: [RuleId; 9] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::C1,
        RuleId::C2,
        RuleId::C3,
        RuleId::C4,
        RuleId::C5,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::C1 => "C1",
            RuleId::C2 => "C2",
            RuleId::C3 => "C3",
            RuleId::C4 => "C4",
            RuleId::C5 => "C5",
        }
    }

    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "D4" => Some(RuleId::D4),
            "C1" => Some(RuleId::C1),
            "C2" => Some(RuleId::C2),
            "C3" => Some(RuleId::C3),
            "C4" => Some(RuleId::C4),
            "C5" => Some(RuleId::C5),
            _ => None,
        }
    }

    /// One-line rationale, shown by `pw-lint --explain`-style output and
    /// embedded in every diagnostic.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => "HashMap/HashSet iteration order is nondeterministic; sort, reduce order-insensitively, or route through FlowTable/ProfileView",
            RuleId::D2 => "wall-clock/thread-id/ambient-RNG reads make detection output irreproducible; thread SimTime or a seeded RNG through instead",
            RuleId::D3 => "panic path in ingest-facing library code; propagate a typed error (quarantine contract: no panics on corrupt input)",
            RuleId::D4 => "float comparison hazard; use f64::total_cmp / pw_analysis::order helpers instead of == or partial_cmp().unwrap()",
            RuleId::C1 => "blocking socket I/O in the service path without a deadline; call set_read_timeout/set_write_timeout in the enclosing function so a stalled peer cannot wedge the thread",
            RuleId::C2 => "lock discipline: .lock().unwrap()/.expect() turns poisoning into a panic, and a second guard taken while one is held is a lock-ordering hazard; match on the result and drop() the first guard",
            RuleId::C3 => "unbounded growth in service code: mpsc::channel() has no backpressure (use sync_channel) and Vec growth inside a long-lived loop needs a cap/retain/drain bound in the same function",
            RuleId::C4 => "detached thread: the JoinHandle from thread::spawn is dropped, so panics vanish and shutdown cannot supervise it; bind the handle and join it",
            RuleId::C5 => "non-atomic persistent write: a crash mid-write leaves a torn file; write to a tmp sibling and fs::rename over the target",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single finding at `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: RuleId,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-indexed.
    pub line: u32,
    /// What fired, specifically (`\`self.active.iter()\` …`).
    pub message: String,
    /// Trimmed offending source line.
    pub snippet: String,
    /// For evidence-token rules (C1/C3/C5): the token whose *absence*
    /// fired the rule — i.e. what adding it to the enclosing function
    /// would satisfy. `None` for rules without evidence semantics.
    pub evidence: Option<String>,
    /// Set when a `lint.toml` entry covers this finding.
    pub allowed: bool,
}

impl Diagnostic {
    /// `path:line: Dn: message` — the greppable single-line form.
    pub fn render(&self) -> String {
        let tag = if self.allowed { " (allowed)" } else { "" };
        format!(
            "{}:{}: {}{}: {}\n    | {}",
            self.path, self.line, self.rule, tag, self.message, self.snippet
        )
    }

    pub fn to_json(&self) -> String {
        let evidence = match &self.evidence {
            Some(e) => json_str(e),
            None => "null".to_string(),
        };
        format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{},\"snippet\":{},\"evidence\":{},\"allowed\":{}}}",
            json_str(self.rule.as_str()),
            json_str(&self.path),
            self.line,
            json_str(&self.message),
            json_str(&self.snippet),
            evidence,
            self.allowed
        )
    }
}

/// Deterministic report order: path, then line, then rule.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
            .then(a.message.cmp(&b.message))
    });
}

/// Minimal JSON string encoder (no external deps in this crate).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn render_shape() {
        let d = Diagnostic {
            rule: RuleId::D1,
            path: "crates/pw-detect/src/x.rs".into(),
            line: 7,
            message: "m".into(),
            snippet: "for k in m.keys() {".into(),
            evidence: None,
            allowed: false,
        };
        assert!(d.render().starts_with("crates/pw-detect/src/x.rs:7: D1: m"));
        assert!(d.to_json().contains("\"rule\":\"D1\""));
        assert!(d.to_json().contains("\"evidence\":null"));
        let e = Diagnostic {
            evidence: Some("set_read_timeout".into()),
            ..d
        };
        assert!(e.to_json().contains("\"evidence\":\"set_read_timeout\""));
    }

    #[test]
    fn c_rules_parse_and_roundtrip() {
        for id in RuleId::ALL {
            assert_eq!(RuleId::parse(id.as_str()), Some(id));
            assert!(!id.summary().is_empty());
        }
        assert_eq!(RuleId::parse("C3"), Some(RuleId::C3));
        assert_eq!(RuleId::parse("C9"), None);
    }
}
