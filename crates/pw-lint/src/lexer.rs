//! Comment/string-aware source preparation for the rule engine.
//!
//! The rules in [`crate::rules`] pattern-match over *code text*: the raw
//! source with every comment and every string/char-literal body blanked to
//! spaces (delimiters are kept so `.expect("msg")` stays recognizable as
//! `.expect("")`-shaped). Column positions and line numbers are preserved
//! exactly, so a match index in the blanked text is a match index in the
//! file. On top of that, brace matching over the blanked text marks the
//! line spans owned by `#[cfg(test)]` / `#[test]` items, which every rule
//! exempts.
//!
//! This is a lexical analyzer, not a type checker: see DESIGN.md §7 for
//! what that buys (zero dependencies, runs in the offline container where
//! `syn` is unavailable) and where its limits are (receiver typing is
//! name-based, so the rules lean on declaration-site heuristics plus the
//! audited allowlist).
//!
//! On top of blanking, two *scope* layers are computed by brace matching
//! over the blanked text and drive the C-family rules:
//!
//! - **function spans** ([`SourceFile::fn_spans`]) — every `fn` item's
//!   name and body line range, innermost-wins lookup via
//!   [`SourceFile::enclosing_fn`]. Rules use them to demand in-scope
//!   *evidence* tokens ("this function reads a socket, so it must also
//!   mention `set_read_timeout`").
//! - **loop bodies** ([`SourceFile::in_loop`]) — lines inside a
//!   `loop`/`while`/`for` body, so accumulation rules can tell a
//!   long-lived ingest loop from straight-line setup code.

/// One `fn` item's body: `code[start..=end]` (0-indexed lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name (`handle_connection`, …).
    pub name: String,
    /// Line of the `fn` keyword, 0-indexed.
    pub start: usize,
    /// Line of the body's closing brace, 0-indexed, inclusive.
    pub end: usize,
}

/// A source file prepared for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes (stable across platforms).
    pub path: String,
    /// Crate the file belongs to (`pw-detect`, `peerwatch`, ...).
    pub krate: String,
    /// Raw source lines, 0-indexed (diagnostic line N is `raw[N-1]`).
    pub raw: Vec<String>,
    /// Comment- and literal-blanked lines, column-aligned with `raw`.
    pub code: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` / `#[test]` item bodies.
    pub in_test: Vec<bool>,
    /// Every `fn` item's line span, in declaration order (outer items
    /// before the nested fns they contain).
    pub fn_spans: Vec<FnSpan>,
    /// `true` for lines inside a `loop { }` / `while … { }` / `for … { }`
    /// body.
    pub in_loop: Vec<bool>,
}

impl SourceFile {
    pub fn new(path: &str, krate: &str, source: &str) -> Self {
        let blanked = blank_source(source);
        let raw: Vec<String> = source.lines().map(str::to_owned).collect();
        let code: Vec<String> = blanked.lines().map(str::to_owned).collect();
        let in_test = mark_test_lines(&code);
        let fn_spans = collect_fn_spans(&code);
        let in_loop = mark_loop_lines(&code);
        SourceFile {
            path: path.to_owned(),
            krate: krate.to_owned(),
            raw,
            code,
            in_test,
            fn_spans,
            in_loop,
        }
    }

    /// 1-indexed trimmed raw line for diagnostics; empty if out of range.
    pub fn snippet(&self, line: u32) -> &str {
        self.raw.get(line as usize - 1).map_or("", |l| l.trim())
    }

    /// The innermost function span containing 0-indexed `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fn_spans
            .iter()
            .filter(|s| s.start <= line && line <= s.end)
            .max_by_key(|s| s.start)
    }

    /// The first of `tokens` found anywhere in the blanked code of
    /// `span` — the "evidence" search the C-rules build on.
    pub fn span_evidence<'t>(&self, span: &FnSpan, tokens: &[&'t str]) -> Option<&'t str> {
        let end = (span.end + 1).min(self.code.len());
        tokens
            .iter()
            .find(|t| self.code[span.start..end].iter().any(|l| l.contains(**t)))
            .copied()
    }

    /// Whether the function span mentions any of `tokens` at all.
    pub fn span_mentions(&self, span: &FnSpan, tokens: &[&str]) -> bool {
        self.span_evidence(span, tokens).is_some()
    }
}

/// Lexer state while sweeping the source once, left to right.
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    /// Inside `"…"`; payload = just saw a backslash.
    Str(bool),
    /// Inside `r##"…"##`; payload = number of `#`s.
    RawStr(u32),
}

/// Blanks comments and string/char bodies to spaces, preserving layout.
pub fn blank_source(source: &str) -> String {
    let b = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut st = State::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            // Newlines always survive; a line comment ends here.
            if matches!(st, State::LineComment) {
                st = State::Code;
            }
            out.push(b'\n');
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = State::LineComment;
                    out.push(b' ');
                    i += 1;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'"' {
                    st = State::Str(false);
                    out.push(b'"');
                    i += 1;
                } else if c == b'r' && !prev_is_ident(&out) && raw_str_hashes(b, i).is_some() {
                    let hashes = raw_str_hashes(b, i).unwrap();
                    // keep `r##"` opener shape as spaces + quote
                    out.resize(out.len() + hashes as usize + 1, b' ');
                    out.push(b'"');
                    st = State::RawStr(hashes);
                    i += 2 + hashes as usize;
                } else if c == b'b' && !prev_is_ident(&out) && b.get(i + 1) == Some(&b'"') {
                    out.extend_from_slice(b" \"");
                    st = State::Str(false);
                    i += 2;
                } else if c == b'\'' || (c == b'b' && b.get(i + 1) == Some(&b'\'')) {
                    // Char literal vs lifetime: a literal closes within a
                    // few bytes (`'x'`, `'\n'`, `'\u{1F600}'`); a lifetime
                    // never has a closing quote before an identifier break.
                    let q = if c == b'b' { i + 1 } else { i };
                    if let Some(end) = char_literal_end(b, q) {
                        out.push(c);
                        if c == b'b' {
                            out.push(b'\'');
                        }
                        out.resize(out.len() + (end - q - 1), b' ');
                        out.push(b'\'');
                        i = end + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                out.push(b' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    st = State::Str(false);
                    out.push(b' ');
                    i += 1;
                } else if c == b'\\' {
                    st = State::Str(true);
                    out.push(b' ');
                    i += 1;
                } else if c == b'"' {
                    st = State::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && closes_raw(b, i, hashes) {
                    out.push(b'"');
                    out.resize(out.len() + hashes as usize, b' ');
                    st = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    // Blanking only ever substitutes ASCII spaces for non-newline bytes,
    // but multi-byte UTF-8 appears inside comments/strings, so rebuild
    // through lossy conversion for safety.
    String::from_utf8_lossy(&out).into_owned()
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

/// `Some(n)` if `b[i..]` opens a raw string `r`, `r#`, `r##`... returning
/// the number of `#`s.
fn raw_str_hashes(b: &[u8], i: usize) -> Option<u32> {
    debug_assert_eq!(b[i], b'r');
    let mut j = i + 1;
    let mut hashes = 0u32;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&b'"')).then_some(hashes)
}

fn closes_raw(b: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| b.get(i + k) == Some(&b'#'))
}

/// If `b[q] == '\''` starts a char literal, returns the index of the
/// closing quote; `None` for lifetimes / loop labels.
fn char_literal_end(b: &[u8], q: usize) -> Option<usize> {
    debug_assert_eq!(b[q], b'\'');
    match b.get(q + 1)? {
        b'\\' => {
            // escape: scan to closing quote (bounded; `'\u{10FFFF}'`)
            (q + 2..(q + 12).min(b.len())).find(|&j| b[j] == b'\'')
        }
        _ => {
            // `'x'` (possibly multi-byte char): closing quote within 5
            // bytes, and NOT `'a` followed by ident char (lifetime).
            let close = (q + 2..(q + 6).min(b.len())).find(|&j| b[j] == b'\'')?;
            let inner_is_ident = b[q + 1].is_ascii_alphabetic() || b[q + 1] == b'_';
            if inner_is_ident && close > q + 2 {
                // `'ab'` is not a char literal; treat as lifetime-ish.
                return None;
            }
            Some(close)
        }
    }
}

/// Marks lines covered by `#[cfg(test)]` / `#[test]` items, by brace
/// matching over blanked text.
fn mark_test_lines(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let joined: Vec<(usize, String)> = code
        .iter()
        .enumerate()
        .map(|(i, l)| (i, l.clone()))
        .collect();

    for (li, line) in &joined {
        for pat in ["#[cfg(test)]", "#[test]"] {
            let mut from = 0;
            while let Some(p) = line[from..].find(pat) {
                let start = from + p;
                mark_item_span(code, &mut in_test, *li, start + pat.len());
                from = start + pat.len();
            }
        }
    }
    in_test
}

/// Marks from the attribute at (`line`, `col`) to the end of the item it
/// decorates: first `{` at depth 0, through its matching `}` (or through
/// the first `;` if one comes first, e.g. `#[cfg(test)] use …;`).
fn mark_item_span(code: &[String], in_test: &mut [bool], line: usize, col: usize) {
    let mut depth = 0i32;
    let mut entered = false;
    let mut li = line;
    let mut ci = col;
    while let Some(l) = code.get(li) {
        let bytes = l.as_bytes();
        while ci < bytes.len() {
            let c = bytes[ci];
            match c {
                b'{' => {
                    depth += 1;
                    entered = true;
                }
                b'}' => {
                    depth -= 1;
                    if entered && depth <= 0 {
                        for f in in_test.iter_mut().take(li + 1).skip(line) {
                            *f = true;
                        }
                        return;
                    }
                }
                b';' if !entered => {
                    for f in in_test.iter_mut().take(li + 1).skip(line) {
                        *f = true;
                    }
                    return;
                }
                _ => {}
            }
            ci += 1;
        }
        li += 1;
        ci = 0;
    }
    // Unbalanced file (shouldn't happen on rustc-accepted code): mark to EOF.
    for f in in_test.iter_mut().skip(line) {
        *f = true;
    }
}

/// Finds every `fn` item and brace-matches its body. A `fn` whose
/// signature ends in `;` (trait method declaration, extern) has no body
/// and is skipped. Closures contribute braces to whichever fn contains
/// them, which is exactly the scoping the evidence rules want.
fn collect_fn_spans(code: &[String]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for (li, line) in code.iter().enumerate() {
        let mut from = 0;
        while let Some(p) = find_keyword_from(line, "fn", from) {
            from = p + 2;
            let name: String = line[p + 2..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue; // `fn(` pointer type, `Fn` trait, …
            }
            if let Some(end) = body_end(code, li, p + 2) {
                spans.push(FnSpan {
                    name,
                    start: li,
                    end,
                });
            }
        }
    }
    spans
}

/// From (`line`, `col`), scans forward for the first `{` before any
/// top-level `;` and returns the line of its matching `}`. `None` for
/// bodyless declarations. Parens are tracked so a `;` inside a default
/// expression or `where` bound does not end the search early.
fn body_end(code: &[String], line: usize, col: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut paren = 0i32;
    let mut entered = false;
    let mut li = line;
    let mut ci = col;
    while let Some(l) = code.get(li) {
        let bytes = l.as_bytes();
        while ci < bytes.len() {
            match bytes[ci] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' => {
                    depth += 1;
                    entered = true;
                }
                b'}' => {
                    depth -= 1;
                    if entered && depth <= 0 {
                        return Some(li);
                    }
                }
                b';' if !entered && paren == 0 => return None,
                _ => {}
            }
            ci += 1;
        }
        li += 1;
        ci = 0;
    }
    None
}

/// Marks lines inside `loop`/`while`/`for` bodies by brace-matching from
/// each loop keyword to its body's closing brace.
fn mark_loop_lines(code: &[String]) -> Vec<bool> {
    let mut in_loop = vec![false; code.len()];
    for (li, line) in code.iter().enumerate() {
        for kw in ["loop", "while", "for"] {
            let mut from = 0;
            while let Some(p) = find_keyword_from(line, kw, from) {
                from = p + kw.len();
                // The loop body is the first `{` after the keyword (the
                // header expression cannot contain a bare struct literal,
                // so the first brace is the body).
                if let Some(end) = body_end(code, li, p + kw.len()) {
                    let body_start = li; // header line counts: `while x { f(); }`
                    for f in in_loop
                        .iter_mut()
                        .take((end + 1).min(code.len()))
                        .skip(body_start)
                    {
                        *f = true;
                    }
                }
            }
        }
    }
    in_loop
}

/// [`find_keyword`]-style whole-word search starting at byte `from`.
fn find_keyword_from(s: &str, kw: &str, from: usize) -> Option<usize> {
    let b = s.as_bytes();
    let mut start = from;
    while let Some(p) = s.get(start..)?.find(kw) {
        let at = start + p;
        let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let after = at + kw.len();
        let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + kw.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let src = "let x = 1; // HashMap::new()\nlet s = \"Instant::now\"; /* SystemTime */ f();\n";
        let out = blank_source(src);
        assert!(!out.contains("HashMap"));
        assert!(!out.contains("Instant"));
        assert!(!out.contains("SystemTime"));
        assert!(out.contains("let x = 1;"));
        assert!(out.contains("f();"));
        // layout preserved
        assert_eq!(out.lines().count(), 2);
        assert_eq!(
            out.lines().next().unwrap().len(),
            src.lines().next().unwrap().len()
        );
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let r = r#\"unwrap() \"# ; let c = '\\n'; let l: &'static str = \"x\";";
        let out = blank_source(src);
        assert!(!out.contains("unwrap"));
        assert!(out.contains("'static"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still */ b";
        let out = blank_source(src);
        assert!(out.contains('a') && out.contains('b'));
        assert!(!out.contains("still"));
    }

    #[test]
    fn marks_cfg_test_mod() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::new("x.rs", "pw-x", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn marks_test_fn_only() {
        let src = "fn a() {}\n#[test]\nfn t() {\n  boom();\n}\nfn b() {}\n";
        let f = SourceFile::new("x.rs", "pw-x", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[2] && f.in_test[3]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let f = SourceFile::new("x.rs", "pw-x", src);
        assert!(!f.in_test[1]);
    }

    #[test]
    fn fn_spans_cover_bodies_and_skip_declarations() {
        let src = "fn outer() {\n    let x = 1;\n}\ntrait T {\n    fn decl(&self);\n}\nfn later() -> u32 {\n    2\n}\n";
        let f = SourceFile::new("x.rs", "pw-x", src);
        let names: Vec<_> = f.fn_spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["outer", "later"]);
        assert_eq!((f.fn_spans[0].start, f.fn_spans[0].end), (0, 2));
        assert_eq!((f.fn_spans[1].start, f.fn_spans[1].end), (6, 8));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() {\n    fn inner() {\n        body();\n    }\n    tail();\n}\n";
        let f = SourceFile::new("x.rs", "pw-x", src);
        assert_eq!(f.enclosing_fn(2).unwrap().name, "inner");
        assert_eq!(f.enclosing_fn(4).unwrap().name, "outer");
        assert!(f.enclosing_fn(6).is_none());
    }

    #[test]
    fn span_evidence_sees_code_not_strings() {
        let src = "fn f(s: &TcpStream) {\n    s.set_read_timeout(t);\n    log(\"deadline\");\n}\n";
        let f = SourceFile::new("x.rs", "pw-x", src);
        let span = f.enclosing_fn(1).unwrap().clone();
        assert_eq!(
            f.span_evidence(&span, &["set_read_timeout"]),
            Some("set_read_timeout")
        );
        // "deadline" only appears inside a string literal, which blanking
        // removed: it is not evidence.
        assert_eq!(f.span_evidence(&span, &["deadline"]), None);
    }

    #[test]
    fn loop_bodies_are_marked() {
        let src = "fn f() {\n    setup();\n    loop {\n        work();\n    }\n    while going {\n        more();\n    }\n    for x in xs {\n        each(x);\n    }\n    teardown();\n}\n";
        let f = SourceFile::new("x.rs", "pw-x", src);
        assert!(!f.in_loop[1]);
        assert!(f.in_loop[2] && f.in_loop[3] && f.in_loop[4]);
        assert!(f.in_loop[5] && f.in_loop[6]);
        assert!(f.in_loop[8] && f.in_loop[9]);
        assert!(!f.in_loop[11]);
    }

    #[test]
    fn for_each_is_not_a_loop_keyword() {
        let src = "fn f() {\n    xs.for_each(|x| {\n        g(x);\n    });\n}\n";
        let f = SourceFile::new("x.rs", "pw-x", src);
        assert!(f.in_loop.iter().all(|b| !b));
    }
}
