//! `cargo-deny`-style dependency policy, sized for an offline workspace.
//!
//! Reads `Cargo.lock` and every workspace manifest and enforces:
//!
//! 1. **Allowlisted externals** — every non-workspace package in the lock
//!    must appear in [`ALLOWED_EXTERNAL`]. A new transitive dependency is
//!    a reviewed decision here, not a side effect of a `cargo add`.
//! 2. **License policy** — every workspace manifest must declare (or
//!    inherit) `MIT OR Apache-2.0`.
//! 3. **No git/registry-url dependencies** — path/workspace deps only,
//!    so builds stay hermetic.

/// External packages the workspace may depend on (the `.devstubs`
/// stand-ins in this container; the same names resolve to the real crates
/// where a registry is available).
pub const ALLOWED_EXTERNAL: [&str; 5] = ["criterion", "proptest", "rand", "serde", "serde_derive"];

#[derive(Debug, PartialEq, Eq)]
pub struct DepsReport {
    pub packages_checked: usize,
    pub manifests_checked: usize,
    pub violations: Vec<String>,
}

impl DepsReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// `lock_text` is `Cargo.lock`; `manifests` is `(path, contents)` for the
/// root and every member `Cargo.toml`.
pub fn check(lock_text: &str, manifests: &[(String, String)]) -> DepsReport {
    let mut violations = Vec::new();

    let packages = lock_packages(lock_text);
    for name in &packages {
        let is_workspace = name == "peerwatch" || name.starts_with("pw-");
        if !is_workspace && !ALLOWED_EXTERNAL.contains(&name.as_str()) {
            violations.push(format!(
                "Cargo.lock: package `{name}` is not in the allowed external set ({})",
                ALLOWED_EXTERNAL.join(", ")
            ));
        }
    }

    for (path, text) in manifests {
        let licensed = text.contains("license = \"MIT OR Apache-2.0\"")
            || text.contains("license.workspace = true");
        if text.contains("[package]") && !licensed {
            violations.push(format!(
                "{path}: package does not declare or inherit `MIT OR Apache-2.0`"
            ));
        }
        for (i, line) in text.lines().enumerate() {
            let l = line.trim();
            if l.starts_with('#') {
                continue;
            }
            if l.contains("git = \"") {
                violations.push(format!(
                    "{path}:{}: git dependency breaks hermetic builds: `{l}`",
                    i + 1
                ));
            }
            if l.contains("registry = \"") && !path.ends_with("config.toml") {
                violations.push(format!(
                    "{path}:{}: alternate-registry dependency: `{l}`",
                    i + 1
                ));
            }
        }
    }

    violations.sort();
    DepsReport {
        packages_checked: packages.len(),
        manifests_checked: manifests.len(),
        violations,
    }
}

fn lock_packages(lock_text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_package = false;
    for line in lock_text.lines() {
        let l = line.trim();
        if l == "[[package]]" {
            in_package = true;
        } else if l.starts_with('[') {
            in_package = false;
        } else if in_package {
            if let Some(rest) = l.strip_prefix("name = \"") {
                if let Some(name) = rest.strip_suffix('"') {
                    out.push(name.to_owned());
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_known_set() {
        let lock = "[[package]]\nname = \"rand\"\nversion = \"0.8.900\"\n\n[[package]]\nname = \"pw-flow\"\nversion = \"0.1.0\"\n";
        let manifests = vec![(
            "Cargo.toml".to_owned(),
            "[package]\nname = \"pw-flow\"\nlicense.workspace = true\n".to_owned(),
        )];
        let report = check(lock, &manifests);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.packages_checked, 2);
    }

    #[test]
    fn rejects_unknown_external_and_git_dep() {
        let lock = "[[package]]\nname = \"leftpad\"\nversion = \"1.0.0\"\n";
        let manifests = vec![(
            "crates/x/Cargo.toml".to_owned(),
            "[package]\nname = \"x\"\nlicense.workspace = true\n[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n".to_owned(),
        )];
        let report = check(lock, &manifests);
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations.iter().any(|v| v.contains("leftpad")));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("git dependency")));
    }

    #[test]
    fn rejects_missing_license() {
        let manifests = vec![(
            "crates/x/Cargo.toml".to_owned(),
            "[package]\nname = \"x\"\nlicense = \"GPL-3.0\"\n".to_owned(),
        )];
        let report = check("", &manifests);
        assert_eq!(report.violations.len(), 1);
    }
}
