//! Workspace-wide determinism & panic-safety static analysis.
//!
//! The detector's headline guarantee — streaming output byte-identical to
//! batch at any window cut, thread count, or checkpoint/resume point —
//! rests on source-level invariants that runtime tests can only sample:
//! no map-order leaks into output (D1), no ambient nondeterminism (D2),
//! no panic paths on the ingest plane (D3), no partial-order float
//! comparisons in detection math (D4). This crate machine-checks them on
//! every CI run, with `lint.toml` as the audited-exception channel.
//!
//! Driver: `cargo run -p pw-lint` (see `src/bin/pw-lint.rs`). Library
//! entry points: [`scan_workspace`] → [`lint_files`], or [`lint_source`]
//! for a single in-memory file (what the fixture tests use).

pub mod allowlist;
pub mod deps;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use allowlist::AllowEntry;
pub use diag::{Diagnostic, RuleId};

use lexer::SourceFile;
use rules::WorkspaceIndex;
use std::path::{Path, PathBuf};

/// Lints one in-memory file as if it lived at `path` (repo-relative); the
/// owning crate — and therefore the rule set — is derived from the path.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let file = SourceFile::new(path, &crate_of_path(path), source);
    let idx = WorkspaceIndex::build(std::slice::from_ref(&file));
    let mut diags = rules::check_file(&file, &idx);
    diag::sort_diagnostics(&mut diags);
    diags
}

/// Lints a set of prepared files with a shared cross-file index.
pub fn lint_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let idx = WorkspaceIndex::build(files);
    let mut diags: Vec<Diagnostic> = files
        .iter()
        .flat_map(|f| rules::check_file(f, &idx))
        .collect();
    diag::sort_diagnostics(&mut diags);
    diags
}

/// Walks `crates/*/src` and `src/` under `root`, loading every `.rs` file
/// in deterministic path order. Test directories (`tests/`, `benches/`,
/// `examples/`, fixtures) are not loaded at all — every rule exempts test
/// code, and those trees are test code by construction.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut paths)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut paths)?;
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&p)?;
        files.push(SourceFile::new(&rel, &crate_of_path(&rel), &source));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `crates/pw-detect/src/...` → `pw-detect`; `src/...` → `peerwatch`.
pub fn crate_of_path(path: &str) -> String {
    let path = path.replace('\\', "/");
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("peerwatch").to_owned()
    } else {
        "peerwatch".to_owned()
    }
}

/// Applies the allowlist in place; returns the number of entries that
/// matched nothing (stale pins a human should delete).
pub fn apply_allowlist(diags: &mut [Diagnostic], entries: &[AllowEntry]) -> usize {
    let mut used = vec![false; entries.len()];
    for d in diags.iter_mut() {
        for (i, e) in entries.iter().enumerate() {
            if e.matches(d) {
                d.allowed = true;
                used[i] = true;
            }
        }
    }
    used.iter().filter(|u| !**u).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_path_maps() {
        assert_eq!(crate_of_path("crates/pw-flow/src/lib.rs"), "pw-flow");
        assert_eq!(crate_of_path("src/bin/findplotters.rs"), "peerwatch");
    }

    #[test]
    fn allowlist_marks_and_counts_stale() {
        let mut diags = lint_source(
            "crates/pw-flow/src/x.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert_eq!(diags.len(), 1);
        let entries = vec![
            AllowEntry {
                rule: "D3".into(),
                path: "crates/pw-flow/src/x.rs".into(),
                contains: Some("x.unwrap()".into()),
                line: None,
                reason: "test".into(),
            },
            AllowEntry {
                rule: "D3".into(),
                path: "crates/pw-flow/src/gone.rs".into(),
                contains: None,
                line: Some(1),
                reason: "stale".into(),
            },
        ];
        let stale = apply_allowlist(&mut diags, &entries);
        assert!(diags[0].allowed);
        assert_eq!(stale, 1);
    }
}
