//! The project rules: determinism (D1–D4) and concurrency &
//! resource-safety (C1–C5). See DESIGN.md §7 for rationale.
//!
//! Every rule works on [`SourceFile::code`] (comment/string-blanked text)
//! and skips test lines. Scoping is by crate name:
//!
//! * **D1** (map-iteration order) — output-affecting crates:
//!   `pw-detect`, `pw-flow`, `pw-data`, `pw-repro`, and the root
//!   `peerwatch` binaries (their stdout is the product).
//! * **D2** (nondeterminism sources) — everywhere except `pw-bench`
//!   (timing is its job) and `pw-chaos` (fault clocks are seeded, but its
//!   stall-injection API is allowed to talk about wall time).
//! * **D3** (panic paths) — ingest-facing crates `pw-flow`, `pw-detect`.
//! * **D4** (float-order hazards) — detection math: `pw-detect`,
//!   `pw-analysis`.
//! * **C1** (undeadlined socket I/O) — the service path: `pw-server`,
//!   `pw-chaos`, and the `peerwatch` binaries (the query client). A
//!   blocking accept/connect/read/write on a `TcpStream` must sit in a
//!   function that also shows deadline evidence
//!   (`set_read_timeout`/`set_write_timeout`/`io_timeout`/`deadline`).
//! * **C2** (lock discipline) — everywhere except `pw-bench`:
//!   `.lock().unwrap()`/`.expect()` poisoning panics, and a second guard
//!   taken while one is held (ordering hazard).
//! * **C3** (unbounded growth) — `pw-server` only: `mpsc::channel()`
//!   (unbounded, no backpressure) and `Vec` growth inside long-lived
//!   loops without a cap/retain/drain evidence token in the function.
//! * **C4** (detached threads) — everywhere except `pw-bench`: a
//!   `thread::spawn` whose `JoinHandle` is discarded.
//! * **C5** (non-atomic persistent writes) — crates that persist state:
//!   `pw-detect`, `pw-server`, `peerwatch`. File creation needs
//!   tmp+rename evidence in the enclosing function.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::SourceFile;
use std::collections::BTreeSet;

/// Cross-file facts collected in a first pass over the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// `pub` struct-field names whose declared type is a std hash map/set
    /// everywhere they are declared (names that are map-typed in one
    /// struct and not in another are dropped as ambiguous, so D1 never
    /// fires on a name it cannot classify).
    pub map_fields: BTreeSet<String>,
}

impl WorkspaceIndex {
    pub fn build(files: &[SourceFile]) -> Self {
        let mut map_fields = BTreeSet::new();
        let mut non_map = BTreeSet::new();
        for f in files {
            for line in &f.code {
                if let Some((name, is_map)) = classify_field_decl(line) {
                    if is_map {
                        map_fields.insert(name);
                    } else {
                        non_map.insert(name);
                    }
                }
            }
        }
        map_fields.retain(|n| !non_map.contains(n));
        WorkspaceIndex { map_fields }
    }
}

/// Parses `pub [vis] name: <type>` declarations; `Some((name, is_map))`.
fn classify_field_decl(line: &str) -> Option<(String, bool)> {
    let t = line.trim_start();
    let rest = ["pub(crate) ", "pub(super) ", "pub "]
        .iter()
        .find_map(|p| t.strip_prefix(p))?;
    let colon = rest.find(':')?;
    // `pub fn`, `pub mod`, `pub use`, generics, paths with `::` …
    if rest[..colon].contains(|c: char| !c.is_alphanumeric() && c != '_')
        || rest[colon..].starts_with("::")
    {
        return None;
    }
    let name = rest[..colon].trim();
    if name.is_empty() || !name.chars().next().is_some_and(char::is_alphabetic) {
        return None;
    }
    let ty = rest[colon + 1..].trim_start();
    let is_map = ty.starts_with("HashMap<")
        || ty.starts_with("HashSet<")
        || ty.starts_with("std::collections::HashMap<")
        || ty.starts_with("std::collections::HashSet<");
    Some((name.to_owned(), is_map))
}

/// Which rules run for which crate.
pub fn rules_for_crate(krate: &str) -> Vec<RuleId> {
    let mut rules = Vec::new();
    if matches!(
        krate,
        "pw-detect" | "pw-flow" | "pw-data" | "pw-repro" | "peerwatch"
    ) {
        rules.push(RuleId::D1);
    }
    if !matches!(krate, "pw-bench" | "pw-chaos") {
        rules.push(RuleId::D2);
    }
    if matches!(krate, "pw-detect" | "pw-flow") {
        rules.push(RuleId::D3);
    }
    if matches!(krate, "pw-detect" | "pw-analysis") {
        rules.push(RuleId::D4);
    }
    if matches!(krate, "pw-server" | "pw-chaos" | "peerwatch") {
        rules.push(RuleId::C1);
    }
    if krate != "pw-bench" {
        rules.push(RuleId::C2);
    }
    if krate == "pw-server" {
        rules.push(RuleId::C3);
    }
    if krate != "pw-bench" {
        rules.push(RuleId::C4);
    }
    if matches!(krate, "pw-detect" | "pw-server" | "peerwatch") {
        rules.push(RuleId::C5);
    }
    rules
}

/// Runs every applicable rule over one file.
pub fn check_file(file: &SourceFile, idx: &WorkspaceIndex) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in rules_for_crate(&file.krate) {
        match rule {
            RuleId::D1 => d1_map_iteration(file, idx, &mut out),
            RuleId::D2 => d2_nondeterminism(file, &mut out),
            RuleId::D3 => d3_panic_paths(file, &mut out),
            RuleId::D4 => d4_float_order(file, &mut out),
            RuleId::C1 => c1_undeadlined_io(file, &mut out),
            RuleId::C2 => c2_lock_discipline(file, &mut out),
            RuleId::C3 => c3_unbounded_growth(file, &mut out),
            RuleId::C4 => c4_detached_threads(file, &mut out),
            RuleId::C5 => c5_nonatomic_writes(file, &mut out),
        }
    }
    out
}

fn diag(file: &SourceFile, rule: RuleId, line0: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: file.path.clone(),
        line: line0 as u32 + 1,
        message,
        snippet: file.snippet(line0 as u32 + 1).to_owned(),
        evidence: None,
        allowed: false,
    }
}

/// [`diag`] for evidence-token rules: `evidence` is the token whose
/// *absence* fired the rule — adding it to the enclosing function
/// satisfies the lint.
fn diag_ev(
    file: &SourceFile,
    rule: RuleId,
    line0: usize,
    message: String,
    evidence: &str,
) -> Diagnostic {
    Diagnostic {
        evidence: Some(evidence.to_owned()),
        ..diag(file, rule, line0, message)
    }
}

// ---------------------------------------------------------------- D1 --

const ITER_CALLS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_keys()",
    ".into_values()",
    ".into_iter()",
    ".drain(",
];

/// Tokens that sanction an iteration: an explicit re-sort, a collection
/// with a defined order, an order-insensitive reduction, or routing
/// through the canonical-order data plane types (`FlowTable`,
/// `ProfileView`, `ProfileTable::from_pairs` — which sorts — and the
/// id-ordered `HostMask` bitset).
const D1_SANCTIONS: [&str; 19] = [
    ".sort", // sort_by / sort_unstable / sort_by_key / sorted
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    ".sum",
    ".product",
    ".count()",
    ".min(",
    ".min_by",
    ".max(",
    ".max_by",
    ".all(",
    ".any(",
    ".contains",
    "FlowTable",
    "ProfileView",
    ".extend_from_table",
    "from_pairs",
    "HostMask",
];

/// How many lines after the iteration site the sanction scan covers; map
/// iterations are sanctioned by a sort/reduction within the same
/// statement or the statements immediately following (`collect` into a
/// Vec then `v.sort()`).
const D1_LOOKAHEAD: usize = 7;

/// How many lines *before* the iteration site the sanction scan covers:
/// a pre-sorted shadow (`v.sort(); for x in &v`) or the map-target
/// annotation of a wrapped chain (`let out: HashMap<..> =` on the line
/// above the `.iter()`).
const D1_LOOKBEHIND: usize = 2;

fn d1_map_iteration(file: &SourceFile, idx: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
    let local_maps = collect_local_map_names(file);
    let map_fns = collect_map_returning_fns(file);

    for (li, line) in file.code.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        // Method-call iteration: `recv.keys()`, `self.active.drain()`, …
        for call in ITER_CALLS {
            let mut from = 0;
            while let Some(p) = line[from..].find(call) {
                let at = from + p;
                from = at + call.len();
                let recv = receiver_name(file, li, at, &map_fns);
                let Some(recv) = recv else { continue };
                if !is_map_name(file, &recv, &local_maps, idx) {
                    continue;
                }
                if d1_sanctioned(file, li) {
                    continue;
                }
                out.push(diag(
                    file,
                    RuleId::D1,
                    li,
                    format!(
                        "`{recv}{call}` iterates a HashMap/HashSet in output-affecting code with no explicit sort, order-insensitive reduction, or FlowTable/ProfileView routing in reach",
                    ),
                ));
            }
        }
        // `for pat in [&[mut ]]recv {` over a bare map binding.
        if let Some(recv) = for_loop_receiver(line) {
            if is_map_name(file, &recv, &local_maps, idx) && !d1_sanctioned(file, li) {
                out.push(diag(
                    file,
                    RuleId::D1,
                    li,
                    format!(
                        "`for … in {recv}` iterates a HashMap/HashSet in output-affecting code in nondeterministic order",
                    ),
                ));
            }
        }
    }
}

fn d1_sanctioned(file: &SourceFile, li: usize) -> bool {
    let end = (li + D1_LOOKAHEAD + 1).min(file.code.len());
    if file.code[li..end]
        .iter()
        .any(|l| D1_SANCTIONS.iter().any(|s| l.contains(s)) || map_rebuild_line(l))
    {
        return true;
    }
    // Backward window: only the sanctions that plausibly precede the
    // iteration — a pre-sort of the thing being iterated, an ordered
    // collection in play, or the map-target annotation of this statement.
    let start = li.saturating_sub(D1_LOOKBEHIND);
    file.code[start..li]
        .iter()
        .any(|l| l.contains(".sort") || l.contains("BTree") || map_rebuild_line(l))
}

/// `let x: HashMap<..> = …` / `….collect::<HashSet<..>>()`: iterating one
/// map to rebuild another map/set leaks no order into output — only a
/// later *iteration of the rebuilt map* can, and that gets its own check.
/// A bare `fn f(m: &HashMap<..>)` signature does not sanction: the token
/// must sit in a `let` statement or next to a `collect`.
fn map_rebuild_line(l: &str) -> bool {
    // `collect` as a whole word — `std::collections::HashMap` in an fn
    // signature must not count as a rebuild.
    (l.contains("HashMap<") || l.contains("HashSet<"))
        && (find_keyword(l, "let").is_some() || find_keyword(l, "collect").is_some())
}

fn is_map_name(
    file: &SourceFile,
    name: &str,
    local: &BTreeSet<String>,
    idx: &WorkspaceIndex,
) -> bool {
    if local.contains(name) {
        return true;
    }
    // A workspace-wide `pub` map field can collide with a same-named
    // non-map field in this file (`profiles: Vec<HostProfile>` in
    // ProfileTable vs `pub profiles: HashMap<..>` in pw-repro); the
    // file's own annotation wins.
    idx.map_fields.contains(name) && !has_non_map_annotation(file, name)
}

/// Map-typed names declared in this file: `let` bindings with a
/// `HashMap`/`HashSet` annotation or constructor, fn params and struct
/// fields annotated in-file, and bindings of calls to in-file functions
/// returning maps.
fn collect_local_map_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let map_fns = collect_map_returning_fns(file);
    for line in &file.code {
        for tok in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(p) = line[from..].find(tok) {
                let at = from + p;
                from = at + tok.len();
                // Annotation or constructor position?
                if let Some(name) = let_binding_name(line, at) {
                    names.insert(name);
                } else if let Some(name) = annotation_name(line, at) {
                    names.insert(name);
                }
            }
        }
        // `let x = make_map(...)` where make_map is declared in-file with
        // a map return type.
        if let Some((name, callee)) = let_call_binding(line) {
            if map_fns.contains(&callee) {
                names.insert(name);
            }
        }
    }
    // A name that also carries a non-map type annotation somewhere in the
    // same file (`ips: &HashSet<..>` param in one fn, `ips: Vec<..>` field
    // in a struct) is ambiguous — drop it rather than guess.
    let ambiguous: Vec<String> = names
        .iter()
        .filter(|n| has_non_map_annotation(file, n))
        .cloned()
        .collect();
    for n in ambiguous {
        names.remove(&n);
    }
    names
}

/// True if `name: <Type>` appears anywhere in the file with a type head
/// other than HashMap/HashSet. Only type-looking heads count (leading
/// `&`/`mut`/lifetime stripped, first segment uppercase, not a call), so
/// struct-literal field values (`suspects: kept`) stay out of it.
fn has_non_map_annotation(file: &SourceFile, name: &str) -> bool {
    let pat = format!("{name}:");
    file.code.iter().any(|line| {
        let mut from = 0;
        while let Some(p) = line[from..].find(&pat) {
            let at = from + p;
            from = at + pat.len();
            let word_start = at == 0 || {
                let c = line.as_bytes()[at - 1];
                !(c.is_ascii_alphanumeric() || c == b'_' || c == b'.' || c == b':')
            };
            let after = &line[at + pat.len()..];
            if !word_start || after.starts_with(':') {
                continue; // mid-identifier, or a `name::path`
            }
            if let Some(head) = type_head(after) {
                if !matches!(head, "HashMap" | "HashSet")
                    && !head.ends_with("::HashMap")
                    && !head.ends_with("::HashSet")
                {
                    return true;
                }
            }
        }
        false
    })
}

/// The head of a type-looking token: `&`/`mut`/lifetime prefixes
/// stripped; `Some` only for an uppercase path head that is not a call or
/// struct-literal value (`Vec<..>` yes, `Payload::capture(..)` no).
fn type_head(s: &str) -> Option<&str> {
    let mut s = s.trim_start();
    loop {
        if let Some(r) = s.strip_prefix('&') {
            s = r.trim_start();
        } else if let Some(r) = s.strip_prefix("mut ") {
            s = r.trim_start();
        } else if s.starts_with('\'') {
            let end = s[1..]
                .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                .map_or(s.len(), |i| i + 1);
            s = s[end..].trim_start();
        } else {
            break;
        }
    }
    if !s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        return None;
    }
    let end = s
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(s.len());
    let tail = s[end..].trim_start();
    if tail.starts_with('(') || tail.starts_with('{') {
        return None;
    }
    Some(&s[..end])
}

/// `fn name(..) -> HashMap<..>` (return type on the `fn` line).
fn collect_map_returning_fns(file: &SourceFile) -> BTreeSet<String> {
    let mut fns = BTreeSet::new();
    for line in &file.code {
        let Some(fn_pos) = find_keyword(line, "fn") else {
            continue;
        };
        let Some(arrow) = line.find("->") else {
            continue;
        };
        if arrow < fn_pos {
            continue;
        }
        let ret = line[arrow + 2..].trim_start();
        if ret.starts_with("HashMap<")
            || ret.starts_with("HashSet<")
            || ret.starts_with("std::collections::HashMap<")
            || ret.starts_with("std::collections::HashSet<")
        {
            let after_fn = &line[fn_pos + 2..];
            let name: String = after_fn
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                fns.insert(name);
            }
        }
    }
    fns
}

/// If the `HashMap` token at `at` is part of a `let` statement on this
/// line (annotation `let x: HashMap<..>` or constructor
/// `let x = HashMap::new()`), returns the bound name. The token must sit
/// at the *head* of the annotation/initializer — `let x: Vec<HashMap<..>>`
/// binds a Vec, not a map, and is not collected.
fn let_binding_name(line: &str, at: usize) -> Option<String> {
    let before = &line[..at];
    let head = before.trim_end();
    if !(head.ends_with(':') || head.ends_with('=') || head.ends_with('&')) {
        return None;
    }
    let let_pos = find_keyword(before, "let")?;
    let mut rest = line[let_pos + 3..].trim_start();
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// If the token at `at` is a type annotation `name: HashMap<..>` — also
/// `name: &HashMap<..>`, `name: &'a mut HashMap<..>` — (param or struct
/// field), returns `name`.
fn annotation_name(line: &str, at: usize) -> Option<String> {
    let mut before = line[..at].trim_end();
    // fully-qualified form: `m: &std::collections::HashMap<..>`
    if let Some(s) = before.strip_suffix("std::collections::") {
        before = s.trim_end();
    }
    if let Some(s) = before.strip_suffix("mut") {
        before = s.trim_end();
    }
    // strip a lifetime like `&'a `
    if let Some(q) = before.rfind('\'') {
        let tail = &before[q + 1..];
        if !tail.is_empty() && tail.chars().all(|c| c.is_alphanumeric() || c == '_') {
            before = before[..q].trim_end();
        }
    }
    while let Some(s) = before.strip_suffix('&') {
        before = s.trim_end();
    }
    let before = before.strip_suffix(':')?.trim_end();
    let name_start = before
        .rfind(|c: char| !c.is_alphanumeric() && c != '_')
        .map_or(0, |i| i + 1);
    let name = &before[name_start..];
    (!name.is_empty() && name.chars().next().is_some_and(char::is_alphabetic))
        .then(|| name.to_owned())
}

/// `let [mut] name = callee(` → `(name, callee)`.
fn let_call_binding(line: &str) -> Option<(String, String)> {
    let let_pos = find_keyword(line, "let")?;
    let mut rest = line[let_pos + 3..].trim_start();
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name_end = rest.find(|c: char| !c.is_alphanumeric() && c != '_')?;
    let name = &rest[..name_end];
    let rest2 = rest[name_end..].trim_start();
    let rest2 = rest2.strip_prefix('=')?.trim_start();
    let callee_end = rest2.find(|c: char| !c.is_alphanumeric() && c != '_')?;
    (rest2.as_bytes().get(callee_end) == Some(&b'(') && !name.is_empty())
        .then(|| (name.to_owned(), rest2[..callee_end].to_owned()))
}

/// Finds `kw` as a whole word.
fn find_keyword(s: &str, kw: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut from = 0;
    while let Some(p) = s[from..].find(kw) {
        let at = from + p;
        let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let after = at + kw.len();
        let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + kw.len();
    }
    None
}

/// Receiver name for a method call at byte `at` (the `.`): the identifier
/// immediately before the dot, following field chains (`self.active` →
/// `active`) and in-file map-returning calls (`make()` → `make`). Falls
/// back to the previous line's trailing identifier for wrapped chains.
fn receiver_name(
    file: &SourceFile,
    li: usize,
    at: usize,
    map_fns: &BTreeSet<String>,
) -> Option<String> {
    let line = &file.code[li];
    let before = line[..at].trim_end();
    if before.is_empty() {
        // `.keys()` starts the line: chain continuation; use the previous
        // line's trailing identifier.
        let prev = file.code[..li]
            .iter()
            .rev()
            .find(|l| !l.trim().is_empty())?;
        return trailing_ident(prev.trim_end());
    }
    if before.ends_with(')') {
        // call result: find callee and report it if it's a known
        // map-returning fn; otherwise unknown.
        let callee = callee_of_trailing_call(before)?;
        return map_fns.contains(&callee).then_some(callee);
    }
    trailing_ident(before)
}

fn trailing_ident(s: &str) -> Option<String> {
    let start = s
        .rfind(|c: char| !c.is_alphanumeric() && c != '_')
        .map_or(0, |i| i + 1);
    let name = &s[start..];
    (!name.is_empty() && !name.chars().next().is_some_and(char::is_numeric))
        .then(|| name.to_owned())
}

/// For `…callee(args)` returns `callee`.
fn callee_of_trailing_call(s: &str) -> Option<String> {
    let b = s.as_bytes();
    debug_assert_eq!(b[b.len() - 1], b')');
    let mut depth = 0i32;
    for i in (0..b.len()).rev() {
        match b[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return trailing_ident(&s[..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// `for pat in [&[mut ]]path {` where `path` is a bare (field) path:
/// returns the final identifier.
fn for_loop_receiver(line: &str) -> Option<String> {
    let for_pos = find_keyword(line, "for")?;
    let in_pos = for_pos + find_keyword(&line[for_pos..], "in")?;
    let mut expr = line[in_pos + 2..].trim();
    expr = expr.strip_suffix('{').unwrap_or(expr).trim_end();
    expr = expr.strip_prefix('&').unwrap_or(expr);
    expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
    if expr.is_empty()
        || expr
            .chars()
            .any(|c| !(c.is_alphanumeric() || c == '_' || c == '.'))
    {
        return None;
    }
    expr.rsplit('.').next().map(str::to_owned)
}

// ---------------------------------------------------------------- D2 --

const D2_FORBIDDEN: [(&str, &str); 9] = [
    ("SystemTime::now", "wall-clock read"),
    ("Instant::now", "monotonic-clock read"),
    ("thread_rng", "ambient thread-local RNG"),
    ("rand::random", "ambient RNG"),
    ("std::thread::current", "thread identity"),
    ("process::id", "process identity"),
    ("Utc::now", "wall-clock read"),
    ("Local::now", "wall-clock read"),
    ("Date::now", "wall-clock read"),
];

fn d2_nondeterminism(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (li, line) in file.code.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        for (tok, what) in D2_FORBIDDEN {
            if line.contains(tok) {
                out.push(diag(
                    file,
                    RuleId::D2,
                    li,
                    format!(
                        "`{tok}` ({what}) outside pw-bench/pw-chaos: detection output must be a pure function of the flow records; thread `SimTime`/seeded RNG through instead",
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- D3 --

const D3_PANIC_TOKENS: [(&str, &str); 6] = [
    (".unwrap()", "unwrap"),
    (".expect(", "expect"),
    ("panic!", "panic!"),
    ("todo!", "todo!"),
    ("unimplemented!", "unimplemented!"),
    (".unwrap_unchecked", "unwrap_unchecked"),
];

fn d3_panic_paths(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut split_vars: BTreeSet<String> = BTreeSet::new();
    for (li, line) in file.code.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        for (tok, name) in D3_PANIC_TOKENS {
            let mut from = 0;
            while let Some(p) = line[from..].find(tok) {
                from += p + tok.len();
                out.push(diag(
                    file,
                    RuleId::D3,
                    li,
                    format!(
                        "`{name}` in ingest-facing library code: the quarantine contract (DESIGN.md §6) promises no panics on corrupt input; return a typed error or allowlist with a proof of infallibility",
                    ),
                ));
            }
        }
        // Indexing into split-derived slices: `let cols: Vec<&str> =
        // line.split(',').collect();` then `cols[3]` can panic on short
        // input — `.get(3)` is the lint-clean spelling.
        if line.contains(".split") && line.contains("collect") {
            if let Some(name) = let_binding_any_name(line) {
                split_vars.insert(name);
            }
        }
        for var in &split_vars {
            let pat = format!("{var}[");
            let mut from = 0;
            while let Some(p) = line[from..].find(&pat) {
                let at = from + p;
                from = at + pat.len();
                // whole-word receiver check
                let before_ok = at == 0 || {
                    let c = line.as_bytes()[at - 1];
                    !(c.is_ascii_alphanumeric() || c == b'_' || c == b'.')
                };
                if before_ok {
                    out.push(diag(
                        file,
                        RuleId::D3,
                        li,
                        format!(
                            "indexing `{var}[…]`, a split()-derived slice of user input, can panic on short rows; use `.get(…)` with a typed error",
                        ),
                    ));
                }
            }
        }
    }
}

/// `let [mut] name` → name, regardless of the RHS.
fn let_binding_any_name(line: &str) -> Option<String> {
    let let_pos = find_keyword(line, "let")?;
    let mut rest = line[let_pos + 3..].trim_start();
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

// ---------------------------------------------------------------- D4 --

fn d4_float_order(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (li, line) in file.code.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        // (a) `partial_cmp(..).unwrap()` / `.expect(..)`: NaN panics at a
        // distance; `f64::total_cmp` is total and free.
        if line.contains("partial_cmp")
            && (line.contains(".unwrap()") || line.contains(".expect("))
            && !line.contains("total_cmp")
        {
            out.push(diag(
                file,
                RuleId::D4,
                li,
                "`partial_cmp().unwrap()` panics on NaN mid-sort; use `f64::total_cmp` (or `pw_analysis::order::fcmp`) for a total order".to_owned(),
            ));
        }
        // (b) `== 1.5` / `!= 0.0`: exact float-literal equality in
        // detection math.
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(p) = line[from..].find(op) {
                let at = from + p;
                from = at + op.len();
                // skip `!==`/`===`-ish and pattern arms `=>`
                if line.as_bytes().get(at + 2) == Some(&b'=') {
                    continue;
                }
                if at > 0 && matches!(line.as_bytes()[at - 1], b'=' | b'!' | b'<' | b'>') {
                    continue;
                }
                let rhs = line[at + op.len()..].trim_start();
                let lhs = line[..at].trim_end();
                if is_float_literal_start(rhs) || is_float_literal_end(lhs) {
                    out.push(diag(
                        file,
                        RuleId::D4,
                        li,
                        format!(
                            "float-literal `{op}` comparison in detection math; compare with an epsilon or restructure around `total_cmp`",
                        ),
                    ));
                }
            }
        }
    }
}

/// `1.5…`, `0.0`, `2.5e3` at the start of `s`.
fn is_float_literal_start(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    if i == 0 || i >= b.len() || b[i] != b'.' {
        return false;
    }
    b.get(i + 1).is_some_and(u8::is_ascii_digit)
}

/// `…1.5`, `…0.0` at the end of `s` (also `1.5f64`).
fn is_float_literal_end(s: &str) -> bool {
    let s = s
        .strip_suffix("f64")
        .or_else(|| s.strip_suffix("f32"))
        .unwrap_or(s);
    let b = s.as_bytes();
    let mut i = b.len();
    while i > 0 && b[i - 1].is_ascii_digit() {
        i -= 1;
    }
    if i == b.len() || i == 0 || b[i - 1] != b'.' {
        return false;
    }
    i >= 2 && b[i - 2].is_ascii_digit()
}

// ---------------------------------------------------------------- C1 --

/// Always-blocking socket entry points: flagged wherever they appear.
const C1_SOCKET_CALLS: [&str; 3] = [".accept()", ".incoming()", "TcpStream::connect("];

/// Generic I/O calls: blocking hazards only when the enclosing function
/// demonstrably works a TCP socket (mentions `TcpStream`/`TcpListener`),
/// so file and in-memory readers stay out of scope.
const C1_IO_CALLS: [&str; 6] = [
    ".read_exact(",
    ".read_line(",
    ".read_to_end(",
    ".write_all(",
    ".flush()",
    ".read(",
];

/// Deadline evidence: any of these in the enclosing function sanctions
/// its blocking calls. `io_timeout` covers configs that carry the
/// deadline by name; `is_timeout`/`deadline` cover helpers that classify
/// or enforce one.
const C1_EVIDENCE: [&str; 5] = [
    "set_read_timeout",
    "set_write_timeout",
    "io_timeout",
    "is_timeout",
    "deadline",
];

fn c1_undeadlined_io(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    // One diagnostic per function, at its first undeadlined call: the fix
    // (set a deadline at the top of the function) is per-function, so
    // repeating it for every read in a protocol loop is noise.
    let mut reported_fns: BTreeSet<usize> = BTreeSet::new();
    for (li, line) in file.code.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        let socket_hit = C1_SOCKET_CALLS.iter().find(|t| line.contains(**t));
        let io_hit = C1_IO_CALLS.iter().find(|t| line.contains(**t));
        let Some(tok) = socket_hit.or(io_hit) else {
            continue;
        };
        let Some(span) = file.enclosing_fn(li).cloned() else {
            continue; // not in a function body (macro arm, const) — skip
        };
        if socket_hit.is_none() && !file.span_mentions(&span, &["TcpStream", "TcpListener"]) {
            continue;
        }
        if file.span_mentions(&span, &C1_EVIDENCE) {
            continue;
        }
        if !reported_fns.insert(span.start) {
            continue;
        }
        out.push(diag_ev(
            file,
            RuleId::C1,
            li,
            format!(
                "`{tok}` blocks in `{}` with no deadline evidence in the function; a stalled peer wedges this thread forever — set_read_timeout/set_write_timeout first (or allowlist with the reason blocking is the design)",
                span.name
            ),
            "set_read_timeout",
        ));
    }
}

// ---------------------------------------------------------------- C2 --

fn c2_lock_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    // (a) Poisoning panics: `.lock().unwrap()` / `.lock().expect(` — a
    // panic in any other holder then cascades through every thread that
    // touches the mutex.
    for (li, line) in file.code.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        for tok in [".lock().unwrap()", ".lock().expect("] {
            if line.contains(tok) {
                out.push(diag(
                    file,
                    RuleId::C2,
                    li,
                    format!(
                        "`{tok}` turns mutex poisoning into a cascading panic; match the PoisonError (recover or sever) instead",
                    ),
                ));
            }
        }
    }
    // (b) Nested guards: a second `.lock(` in the same function while the
    // first guard is still plausibly held (no `drop(` in between) is a
    // lock-ordering hazard — two such functions with opposite order
    // deadlock.
    for span in &file.fn_spans {
        let mut held: Option<usize> = None;
        let end = (span.end + 1).min(file.code.len());
        for li in span.start..end {
            // Lines owned by a nested fn get their own span pass.
            if file.enclosing_fn(li).map(|s| s.start) != Some(span.start) {
                continue;
            }
            if file.in_test[li] {
                continue;
            }
            let line = &file.code[li];
            if line.contains("drop(") {
                held = None;
            }
            if line.contains(".lock(") {
                if let Some(first) = held {
                    out.push(diag(
                        file,
                        RuleId::C2,
                        li,
                        format!(
                            "second `.lock(` in `{}` while the guard from line {} is still held: lock-ordering hazard; drop() the first guard or restructure to one critical section",
                            span.name,
                            first + 1
                        ),
                    ));
                } else {
                    held = Some(li);
                }
            }
        }
    }
}

// ---------------------------------------------------------------- C3 --

/// Bounding evidence for growth in long-lived loops: an explicit cap
/// (`max_`/`cap`), retention (`retain`/`truncate`/`drain`), shedding, or
/// a `bound`-named helper.
const C3_EVIDENCE: [&str; 7] = [
    "max_", "cap", "retain", "truncate", "drain", "shed", "bound",
];

fn c3_unbounded_growth(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (li, line) in file.code.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        // (a) Unbounded channel: no backpressure — a slow consumer grows
        // the queue without limit. `sync_channel` is the spelling this
        // workspace uses (ServerConfig::queue_depth).
        if line.contains("mpsc::channel()") {
            out.push(diag(
                file,
                RuleId::C3,
                li,
                "`mpsc::channel()` is unbounded: a slow consumer grows the queue without limit; use `mpsc::sync_channel(depth)` so TCP backpressure reaches the producer".to_owned(),
            ));
        }
        // (b) Growth inside a loop: service loops live for the process
        // lifetime, so every uncapped push is a leak with a delay.
        if file.in_loop[li] && (line.contains(".push(") || line.contains(".extend(")) {
            let Some(span) = file.enclosing_fn(li).cloned() else {
                continue;
            };
            if file.span_mentions(&span, &C3_EVIDENCE) {
                continue;
            }
            out.push(diag_ev(
                file,
                RuleId::C3,
                li,
                format!(
                    "growth inside a loop in `{}` with no bounding evidence in the function; long-lived service loops leak — cap, retain, or drain in the same function",
                    span.name
                ),
                "retain",
            ));
        }
    }
}

// ---------------------------------------------------------------- C4 --

fn c4_detached_threads(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (li, line) in file.code.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        let Some(p) = line.find("thread::spawn") else {
            continue;
        };
        let mut before = line[..p].trim();
        before = before.strip_suffix("std::").unwrap_or(before).trim_end();
        let discarded = if before.ends_with("let _ =") {
            true // explicit discard
        } else if before.is_empty() {
            // Statement position: the call's `)` is directly followed by
            // `;`. A tail expression (returning the handle) is not.
            call_ends_as_statement(&file.code, li, p + "thread::spawn".len())
        } else {
            false // bound, passed as an argument, or chained
        };
        if discarded {
            out.push(diag(
                file,
                RuleId::C4,
                li,
                "`thread::spawn` handle is discarded: panics in the thread vanish and shutdown cannot join it; bind the JoinHandle and join on the exit path".to_owned(),
            ));
        }
    }
}

/// From (`line`, `col`) scans to the call's matching `)` (possibly lines
/// later) and reports whether the next non-space character is `;`.
fn call_ends_as_statement(code: &[String], line: usize, col: usize) -> bool {
    let mut depth = 0i32;
    let mut entered = false;
    let mut li = line;
    let mut ci = col;
    while let Some(l) = code.get(li) {
        let bytes = l.as_bytes();
        while ci < bytes.len() {
            match bytes[ci] {
                b'(' => {
                    depth += 1;
                    entered = true;
                }
                b')' => {
                    depth -= 1;
                    if entered && depth == 0 {
                        let rest = l[ci + 1..].trim_start();
                        return rest.starts_with(';');
                    }
                }
                _ => {}
            }
            ci += 1;
        }
        li += 1;
        ci = 0;
    }
    false
}

// ---------------------------------------------------------------- C5 --

/// Persistent-write entry points that replace a file in place.
const C5_TRIGGERS: [&str; 2] = ["File::create(", "fs::write("];

/// Atomicity evidence: writing a `tmp` sibling, `rename`-ing it over the
/// target, or delegating to a `persist` helper that does.
const C5_EVIDENCE: [&str; 3] = ["rename", "tmp", "persist"];

fn c5_nonatomic_writes(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (li, line) in file.code.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        let Some(tok) = C5_TRIGGERS.iter().find(|t| line.contains(**t)) else {
            continue;
        };
        let Some(span) = file.enclosing_fn(li).cloned() else {
            continue;
        };
        if file.span_mentions(&span, &C5_EVIDENCE) {
            continue;
        }
        out.push(diag_ev(
            file,
            RuleId::C5,
            li,
            format!(
                "`{tok}` in `{}` writes the target in place: a crash mid-write leaves a torn file; write a tmp sibling and fs::rename over it",
                span.name
            ),
            "rename",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(krate: &str, src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs", krate, src)
    }

    #[test]
    fn d1_flags_unsorted_keys() {
        let f = file(
            "pw-detect",
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\n",
        );
        let idx = WorkspaceIndex::default();
        let diags = check_file(&f, &idx);
        assert!(diags.iter().any(|d| d.rule == RuleId::D1 && d.line == 3));
    }

    #[test]
    fn d1_flags_fully_qualified_map_param() {
        let f = file(
            "pw-detect",
            "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n    let mut out = Vec::new();\n    for (k, _) in m.iter() {\n        out.push(*k);\n    }\n    out\n}\n",
        );
        let diags = check_file(&f, &WorkspaceIndex::default());
        assert!(diags.iter().any(|d| d.rule == RuleId::D1 && d.line == 3));
    }

    #[test]
    fn d1_sanctioned_by_sort() {
        let f = file(
            "pw-detect",
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort_unstable();\n    v\n}\n",
        );
        let diags = check_file(&f, &WorkspaceIndex::default());
        assert!(diags.iter().all(|d| d.rule != RuleId::D1));
    }

    #[test]
    fn c1_needs_deadline_evidence_once_per_fn() {
        let src = "fn serve(l: &TcpListener) {\n    let s = l.accept();\n    s.read_exact(&mut b);\n}\nfn deadlined(s: &TcpStream) {\n    s.set_read_timeout(t);\n    s.read_exact(&mut b);\n}\n";
        let diags = check_file(&file("pw-server", src), &WorkspaceIndex::default());
        let c1: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::C1).collect();
        assert_eq!(c1.len(), 1, "one diagnostic per function: {c1:?}");
        assert_eq!(c1[0].line, 2);
        assert_eq!(c1[0].evidence.as_deref(), Some("set_read_timeout"));
    }

    #[test]
    fn c1_ignores_file_readers() {
        let src = "fn load(f: &mut File) {\n    f.read_exact(&mut b);\n}\n";
        let diags = check_file(&file("pw-server", src), &WorkspaceIndex::default());
        assert!(diags.iter().all(|d| d.rule != RuleId::C1));
    }

    #[test]
    fn c2_flags_poisoning_and_nested_guards() {
        let src = "fn bad(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n}\nfn nested(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let Ok(ga) = a.lock() else { return };\n    let Ok(gb) = b.lock() else { return };\n}\nfn serial(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let Ok(ga) = a.lock() else { return };\n    drop(ga);\n    let Ok(gb) = b.lock() else { return };\n}\n";
        let diags = check_file(&file("pw-server", src), &WorkspaceIndex::default());
        let c2: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RuleId::C2)
            .map(|d| d.line)
            .collect();
        assert_eq!(c2, vec![2, 6], "poisoning at 2, nested at 6: {diags:?}");
    }

    #[test]
    fn c3_flags_unbounded_channel_and_loop_growth() {
        let src = "fn run() {\n    let (tx, rx) = mpsc::channel();\n    loop {\n        out.push(x);\n    }\n}\nfn bounded() {\n    let (tx, rx) = mpsc::sync_channel(8);\n    loop {\n        out.push(x);\n        out.retain(|v| v.live);\n    }\n}\n";
        let diags = check_file(&file("pw-server", src), &WorkspaceIndex::default());
        let c3: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RuleId::C3)
            .map(|d| d.line)
            .collect();
        assert_eq!(c3, vec![2, 4], "{diags:?}");
    }

    #[test]
    fn c4_flags_discarded_spawn_only() {
        let src = "fn detach() {\n    thread::spawn(|| work());\n    let _ = thread::spawn(|| work());\n}\nfn supervised() -> JoinHandle<()> {\n    let h = thread::spawn(|| work());\n    thread::spawn(|| tail())\n}\n";
        let diags = check_file(&file("pw-server", src), &WorkspaceIndex::default());
        let c4: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RuleId::C4)
            .map(|d| d.line)
            .collect();
        assert_eq!(c4, vec![2, 3], "{diags:?}");
    }

    #[test]
    fn c5_needs_tmp_rename_evidence() {
        let src = "fn save(p: &Path) {\n    fs::write(p, data);\n}\nfn atomic(p: &Path) {\n    let tmp = p.with_extension(\"t\");\n    fs::write(&tmp, data);\n    fs::rename(&tmp, p);\n}\n";
        let diags = check_file(&file("pw-server", src), &WorkspaceIndex::default());
        let c5: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RuleId::C5)
            .map(|d| d.line)
            .collect();
        assert_eq!(c5, vec![2], "{diags:?}");
    }

    #[test]
    fn c_rules_scope_by_crate() {
        assert!(rules_for_crate("pw-server").contains(&RuleId::C3));
        assert!(!rules_for_crate("pw-detect").contains(&RuleId::C3));
        assert!(!rules_for_crate("pw-bench").contains(&RuleId::C2));
        assert!(!rules_for_crate("pw-bench").contains(&RuleId::C4));
        assert!(rules_for_crate("peerwatch").contains(&RuleId::C1));
        assert!(rules_for_crate("pw-detect").contains(&RuleId::C5));
        assert!(!rules_for_crate("pw-flow").contains(&RuleId::C5));
    }

    #[test]
    fn d3_flags_unwrap_outside_tests_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        let f = file("pw-flow", src);
        let diags = check_file(&f, &WorkspaceIndex::default());
        let d3: Vec<_> = diags.iter().filter(|d| d.rule == RuleId::D3).collect();
        assert_eq!(d3.len(), 1);
        assert_eq!(d3[0].line, 1);
    }
}
