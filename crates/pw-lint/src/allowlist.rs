//! `lint.toml`: the audited-exception file.
//!
//! Every entry names a rule, a file, a way to pin the offending line
//! (either a `contains =` substring of the line — robust to code motion —
//! or an exact `line =` number), and a mandatory human justification.
//! `pw-lint --fix-allowlist` emits a baseline for the current violations
//! with `reason = "TODO: justify"` placeholders; CI stays red until a
//! human replaces them, which is the audit.
//!
//! The parser handles the TOML subset the tool itself emits (`[[allow]]`
//! tables of string/integer scalars, `#` comments) — by design, so the
//! file cannot grow clever enough to stop being reviewable. No external
//! TOML dependency.

use crate::diag::Diagnostic;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    /// Substring of the raw offending line (trimmed); preferred pin.
    pub contains: Option<String>,
    /// 1-indexed exact line; brittle, for generated baselines.
    pub line: Option<u32>,
    pub reason: String,
}

impl AllowEntry {
    pub fn matches(&self, d: &Diagnostic) -> bool {
        if self.rule != d.rule.as_str() || self.path != d.path {
            return false;
        }
        match (&self.contains, self.line) {
            (Some(c), _) => d.snippet.contains(c.as_str()),
            (None, Some(l)) => l == d.line,
            (None, None) => false,
        }
    }
}

/// Parse errors carry the 1-indexed line in `lint.toml` itself.
#[derive(Debug, PartialEq, Eq)]
pub struct AllowlistError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

pub fn parse(text: &str) -> Result<Vec<AllowEntry>, AllowlistError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<PartialEntry> = None;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(p.finish()?);
            }
            current = Some(PartialEntry::new(lineno));
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(AllowlistError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        let Some(p) = current.as_mut() else {
            return Err(AllowlistError {
                line: lineno,
                message: format!("`{key}` outside an [[allow]] table"),
            });
        };
        match key {
            "rule" => p.rule = Some(parse_string(value, lineno)?),
            "path" => p.path = Some(parse_string(value, lineno)?),
            "contains" => p.contains = Some(parse_string(value, lineno)?),
            "reason" => p.reason = Some(parse_string(value, lineno)?),
            "line" => {
                p.line = Some(value.parse::<u32>().map_err(|_| AllowlistError {
                    line: lineno,
                    message: format!("`line` must be an integer, got `{value}`"),
                })?);
            }
            other => {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("unknown key `{other}` (rule/path/contains/line/reason)"),
                });
            }
        }
    }
    if let Some(p) = current.take() {
        entries.push(p.finish()?);
    }
    Ok(entries)
}

/// Serializes entries in the canonical emit order (path, line).
pub fn emit(entries: &[AllowEntry]) -> String {
    let mut out = String::from(
        "# pw-lint audited exceptions. Every entry must carry a real `reason`;\n\
         # `pw-lint --fix-allowlist` regenerates pins but a human writes the why.\n\
         # See DESIGN.md §7 for the rule catalogue.\n",
    );
    for e in entries {
        out.push_str("\n[[allow]]\n");
        out.push_str(&format!("rule = {}\n", toml_str(&e.rule)));
        out.push_str(&format!("path = {}\n", toml_str(&e.path)));
        if let Some(c) = &e.contains {
            out.push_str(&format!("contains = {}\n", toml_str(c)));
        }
        if let Some(l) = e.line {
            out.push_str(&format!("line = {l}\n"));
        }
        out.push_str(&format!("reason = {}\n", toml_str(&e.reason)));
    }
    out
}

fn toml_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn parse_string(value: &str, lineno: u32) -> Result<String, AllowlistError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| AllowlistError {
            line: lineno,
            message: format!("expected a double-quoted string, got `{value}`"),
        })?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                });
            }
        }
    }
    Ok(out)
}

struct PartialEntry {
    started_at: u32,
    rule: Option<String>,
    path: Option<String>,
    contains: Option<String>,
    line: Option<u32>,
    reason: Option<String>,
}

impl PartialEntry {
    fn new(started_at: u32) -> Self {
        PartialEntry {
            started_at,
            rule: None,
            path: None,
            contains: None,
            line: None,
            reason: None,
        }
    }

    fn finish(self) -> Result<AllowEntry, AllowlistError> {
        let missing = |what: &str| AllowlistError {
            line: self.started_at,
            message: format!("[[allow]] entry is missing `{what}`"),
        };
        let rule = self.rule.ok_or_else(|| missing("rule"))?;
        if crate::diag::RuleId::parse(&rule).is_none() {
            return Err(AllowlistError {
                line: self.started_at,
                message: format!("unknown rule id `{rule}`"),
            });
        }
        let path = self.path.ok_or_else(|| missing("path"))?;
        let reason = self.reason.ok_or_else(|| missing("reason"))?;
        if reason.trim().is_empty() {
            return Err(missing("reason"));
        }
        if self.contains.is_none() && self.line.is_none() {
            return Err(missing("contains` or `line"));
        }
        Ok(AllowEntry {
            rule,
            path,
            contains: self.contains,
            line: self.line,
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::RuleId;

    #[test]
    fn roundtrip() {
        let entries = vec![AllowEntry {
            rule: "D3".into(),
            path: "crates/pw-flow/src/x.rs".into(),
            contains: Some("h.join().expect(\"shard\")".into()),
            line: None,
            reason: "join propagates a shard panic; that is the contract".into(),
        }];
        let text = emit(&entries);
        assert_eq!(parse(&text).unwrap(), entries);
    }

    #[test]
    fn rejects_missing_reason() {
        let text = "[[allow]]\nrule = \"D1\"\npath = \"a.rs\"\nline = 3\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn rejects_unknown_rule() {
        let text = "[[allow]]\nrule = \"D9\"\npath = \"a.rs\"\nline = 3\nreason = \"x\"\n";
        assert!(parse(text).unwrap_err().message.contains("unknown rule"));
    }

    #[test]
    fn matching_by_contains_and_line() {
        let d = Diagnostic {
            rule: RuleId::D3,
            path: "a.rs".into(),
            line: 7,
            message: String::new(),
            snippet: "x.unwrap();".into(),
            evidence: None,
            allowed: false,
        };
        let by_contains = AllowEntry {
            rule: "D3".into(),
            path: "a.rs".into(),
            contains: Some("x.unwrap()".into()),
            line: None,
            reason: "r".into(),
        };
        let by_line = AllowEntry {
            rule: "D3".into(),
            path: "a.rs".into(),
            contains: None,
            line: Some(7),
            reason: "r".into(),
        };
        let wrong_rule = AllowEntry {
            rule: "D1".into(),
            ..by_line.clone()
        };
        assert!(by_contains.matches(&d));
        assert!(by_line.matches(&d));
        assert!(!wrong_rule.matches(&d));
    }
}
