use std::collections::{HashMap, HashSet};

pub fn sorted_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect();
    v.sort_unstable();
    v
}

pub fn reduction(m: &HashMap<u32, u32>) -> u64 {
    m.values().map(|&v| u64::from(v)).sum()
}

pub fn rebuild(m: &HashMap<u32, u32>) -> HashSet<u32> {
    let doubled: HashSet<u32> = m.keys().map(|k| k * 2).collect();
    doubled
}

pub fn presorted(s: &HashSet<u32>, out: &mut Vec<u32>) {
    let mut v: Vec<u32> = s.iter().copied().collect();
    v.sort_unstable();
    for x in v {
        out.push(x);
    }
}
