use std::collections::{HashMap, HashSet};

pub fn keys_in_map_order(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn set_loop(s: &HashSet<u32>, out: &mut Vec<u32>) {
    for v in s {
        out.push(*v);
    }
}
