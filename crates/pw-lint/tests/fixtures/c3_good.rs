use std::sync::mpsc;

pub fn start(depth: usize) -> mpsc::Receiver<u64> {
    let (tx, rx) = mpsc::sync_channel(depth);
    std::mem::forget(tx);
    rx
}

pub fn gather(rx: &mpsc::Receiver<u64>, max_reports: usize) -> Vec<u64> {
    let mut reports = Vec::new();
    while let Ok(r) = rx.recv() {
        reports.push(r);
        if reports.len() > max_reports {
            reports.drain(..reports.len() - max_reports);
        }
    }
    reports
}
