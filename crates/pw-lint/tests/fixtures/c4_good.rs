use std::thread;

pub fn supervised() -> thread::JoinHandle<()> {
    let worker = thread::spawn(background);
    register(&worker);
    thread::spawn(background)
}

pub fn joined() {
    let h = thread::spawn(background);
    h.join().ok();
}

fn register(_h: &thread::JoinHandle<()>) {}
fn background() {}
