pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn near_unit(x: f64) -> bool {
    (x - 1.0).abs() < 1e-9
}
