use std::thread;

pub fn detach() {
    thread::spawn(background);
    let _ = thread::spawn(background);
}

fn background() {}
