use std::sync::Mutex;

pub fn poisoned(counter: &Mutex<u64>) -> u64 {
    *counter.lock().unwrap()
}

pub fn nested(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let Ok(ga) = a.lock() else { return 0 };
    let Ok(gb) = b.lock() else { return 0 };
    *ga + *gb
}
