#[derive(Debug)]
pub struct BadPort;

pub fn parse_port(s: &str) -> Result<u16, BadPort> {
    s.parse().map_err(|_| BadPort)
}

pub fn third_field(line: &str) -> Option<String> {
    let fields: Vec<&str> = line.split(',').collect();
    fields.get(2).map(|s| s.to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::parse_port("80").unwrap(), 80);
    }
}
