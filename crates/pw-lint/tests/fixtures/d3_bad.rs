pub fn parse_port(s: &str) -> u16 {
    s.parse().unwrap()
}

pub fn third_field(line: &str) -> String {
    let fields: Vec<&str> = line.split(',').collect();
    fields[2].to_string()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("present")
}
