use std::fs;
use std::path::{Path, PathBuf};

pub fn save_checkpoint(path: &Path, data: &[u8]) -> std::io::Result<()> {
    let tmp: PathBuf = path.with_extension("new");
    fs::write(&tmp, data)?;
    fs::rename(&tmp, path)
}
