pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn elapsed_guard() -> std::time::Instant {
    std::time::Instant::now()
}
