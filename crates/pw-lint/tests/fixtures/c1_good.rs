use std::net::TcpStream;
use std::time::Duration;

pub fn pump(stream: &mut TcpStream, buf: &mut [u8]) {
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(30))).ok();
    stream.read_exact(buf).ok();
    stream.write_all(buf).ok();
}

pub fn load(file: &mut std::fs::File, buf: &mut [u8]) {
    file.read_exact(buf).ok();
}
