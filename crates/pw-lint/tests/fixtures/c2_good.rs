use std::sync::Mutex;

pub fn recovering(counter: &Mutex<u64>) -> u64 {
    match counter.lock() {
        Ok(guard) => *guard,
        Err(torn) => *torn.into_inner(),
    }
}

pub fn serial(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let Ok(ga) = a.lock() else { return 0 };
    let first = *ga;
    drop(ga);
    let Ok(gb) = b.lock() else { return 0 };
    first + *gb
}
