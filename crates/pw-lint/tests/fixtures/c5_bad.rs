use std::fs;
use std::path::Path;

pub fn save_checkpoint(path: &Path, data: &[u8]) -> std::io::Result<()> {
    fs::write(path, data)
}

pub fn open_report(path: &Path) -> std::io::Result<fs::File> {
    fs::File::create(path)
}
