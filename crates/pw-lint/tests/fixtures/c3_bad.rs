use std::sync::mpsc;

pub fn start() -> mpsc::Receiver<u64> {
    let (tx, rx) = mpsc::channel();
    std::mem::forget(tx);
    rx
}

pub fn gather(rx: &mpsc::Receiver<u64>) -> Vec<u64> {
    let mut reports = Vec::new();
    while let Ok(r) = rx.recv() {
        reports.push(r);
    }
    reports
}
