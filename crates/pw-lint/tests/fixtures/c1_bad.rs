use std::net::{TcpListener, TcpStream};

pub fn serve(listener: &TcpListener) {
    for conn in listener.incoming() {
        handle(conn);
    }
}

pub fn pump(stream: &mut TcpStream, buf: &mut [u8]) {
    stream.read_exact(buf).ok();
    stream.write_all(buf).ok();
}
