//! Fixture tests pinning exactly which rule IDs fire on which lines.
//!
//! Each fixture under `tests/fixtures/` is linted via [`pw_lint::lint_source`]
//! with a path that places it in a rule-scoped crate. The `_bad` fixtures
//! assert exact `(rule, line)` pairs; the `_good` fixtures assert silence,
//! so both false negatives and false positives break the build.

use pw_lint::{lint_source, RuleId};

fn fired(path: &str, src: &str) -> Vec<(RuleId, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn d1_bad_fires_on_exact_lines() {
    let got = fired(
        "crates/pw-detect/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert_eq!(got, vec![(RuleId::D1, 4), (RuleId::D1, 8)]);
}

#[test]
fn d1_good_is_silent() {
    let got = fired(
        "crates/pw-detect/src/fixture.rs",
        include_str!("fixtures/d1_good.rs"),
    );
    assert_eq!(got, vec![]);
}

#[test]
fn d1_is_scoped_to_output_affecting_crates() {
    // Same offending source, but pw-analysis is not D1-scoped.
    let got = fired(
        "crates/pw-analysis/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert!(got.iter().all(|(r, _)| *r != RuleId::D1), "{got:?}");
}

#[test]
fn d2_bad_fires_on_exact_lines() {
    let got = fired(
        "crates/pw-netsim/src/fixture.rs",
        include_str!("fixtures/d2_bad.rs"),
    );
    assert_eq!(got, vec![(RuleId::D2, 2), (RuleId::D2, 6)]);
}

#[test]
fn d2_exempts_bench_and_chaos() {
    for krate in ["pw-bench", "pw-chaos"] {
        let got = fired(
            &format!("crates/{krate}/src/fixture.rs"),
            include_str!("fixtures/d2_bad.rs"),
        );
        assert_eq!(got, vec![], "{krate} should be D2-exempt");
    }
}

#[test]
fn d3_bad_fires_on_exact_lines() {
    let got = fired(
        "crates/pw-flow/src/fixture.rs",
        include_str!("fixtures/d3_bad.rs"),
    );
    assert_eq!(
        got,
        vec![(RuleId::D3, 2), (RuleId::D3, 7), (RuleId::D3, 11)]
    );
}

#[test]
fn d3_good_is_silent_including_test_mod_unwrap() {
    let got = fired(
        "crates/pw-flow/src/fixture.rs",
        include_str!("fixtures/d3_good.rs"),
    );
    assert_eq!(got, vec![]);
}

#[test]
fn d3_is_scoped_to_ingest_crates() {
    let got = fired(
        "crates/pw-repro/src/fixture.rs",
        include_str!("fixtures/d3_bad.rs"),
    );
    assert!(got.iter().all(|(r, _)| *r != RuleId::D3), "{got:?}");
}

#[test]
fn d4_bad_fires_on_exact_lines() {
    let got = fired(
        "crates/pw-analysis/src/fixture.rs",
        include_str!("fixtures/d4_bad.rs"),
    );
    assert_eq!(got, vec![(RuleId::D4, 2), (RuleId::D4, 6)]);
}

#[test]
fn d4_good_is_silent() {
    let got = fired(
        "crates/pw-analysis/src/fixture.rs",
        include_str!("fixtures/d4_good.rs"),
    );
    assert_eq!(got, vec![]);
}
