//! Fixture tests pinning exactly which rule IDs fire on which lines.
//!
//! Each fixture under `tests/fixtures/` is linted via [`pw_lint::lint_source`]
//! with a path that places it in a rule-scoped crate. The `_bad` fixtures
//! assert exact `(rule, line)` pairs; the `_good` fixtures assert silence,
//! so both false negatives and false positives break the build.

use pw_lint::{lint_source, RuleId};

fn fired(path: &str, src: &str) -> Vec<(RuleId, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn d1_bad_fires_on_exact_lines() {
    let got = fired(
        "crates/pw-detect/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert_eq!(got, vec![(RuleId::D1, 4), (RuleId::D1, 8)]);
}

#[test]
fn d1_good_is_silent() {
    let got = fired(
        "crates/pw-detect/src/fixture.rs",
        include_str!("fixtures/d1_good.rs"),
    );
    assert_eq!(got, vec![]);
}

#[test]
fn d1_is_scoped_to_output_affecting_crates() {
    // Same offending source, but pw-analysis is not D1-scoped.
    let got = fired(
        "crates/pw-analysis/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert!(got.iter().all(|(r, _)| *r != RuleId::D1), "{got:?}");
}

#[test]
fn d2_bad_fires_on_exact_lines() {
    let got = fired(
        "crates/pw-netsim/src/fixture.rs",
        include_str!("fixtures/d2_bad.rs"),
    );
    assert_eq!(got, vec![(RuleId::D2, 2), (RuleId::D2, 6)]);
}

#[test]
fn d2_exempts_bench_and_chaos() {
    for krate in ["pw-bench", "pw-chaos"] {
        let got = fired(
            &format!("crates/{krate}/src/fixture.rs"),
            include_str!("fixtures/d2_bad.rs"),
        );
        assert_eq!(got, vec![], "{krate} should be D2-exempt");
    }
}

#[test]
fn d3_bad_fires_on_exact_lines() {
    let got = fired(
        "crates/pw-flow/src/fixture.rs",
        include_str!("fixtures/d3_bad.rs"),
    );
    assert_eq!(
        got,
        vec![(RuleId::D3, 2), (RuleId::D3, 7), (RuleId::D3, 11)]
    );
}

#[test]
fn d3_good_is_silent_including_test_mod_unwrap() {
    let got = fired(
        "crates/pw-flow/src/fixture.rs",
        include_str!("fixtures/d3_good.rs"),
    );
    assert_eq!(got, vec![]);
}

#[test]
fn d3_is_scoped_to_ingest_crates() {
    let got = fired(
        "crates/pw-repro/src/fixture.rs",
        include_str!("fixtures/d3_bad.rs"),
    );
    assert!(got.iter().all(|(r, _)| *r != RuleId::D3), "{got:?}");
}

#[test]
fn d4_bad_fires_on_exact_lines() {
    let got = fired(
        "crates/pw-analysis/src/fixture.rs",
        include_str!("fixtures/d4_bad.rs"),
    );
    assert_eq!(got, vec![(RuleId::D4, 2), (RuleId::D4, 6)]);
}

#[test]
fn d4_good_is_silent() {
    let got = fired(
        "crates/pw-analysis/src/fixture.rs",
        include_str!("fixtures/d4_good.rs"),
    );
    assert_eq!(got, vec![]);
}

// ------------------------------------------------------- C1–C5 --------

/// All C fixtures are linted as pw-server sources: the only crate scoped
/// for every C rule, so each fixture exercises its rule without another
/// rule family firing on the same lines.
const C_SCOPE: &str = "crates/pw-server/src/fixture.rs";

#[test]
fn c1_bad_fires_once_per_function() {
    let got = fired(C_SCOPE, include_str!("fixtures/c1_bad.rs"));
    // `serve` reports at its accept loop, `pump` at its first read; the
    // write on the next line is the same missing deadline, not a second
    // finding.
    assert_eq!(got, vec![(RuleId::C1, 4), (RuleId::C1, 10)]);
}

#[test]
fn c1_good_is_silent_including_file_reader() {
    let got = fired(C_SCOPE, include_str!("fixtures/c1_good.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn c2_bad_fires_on_poisoning_and_nested_guard() {
    let got = fired(C_SCOPE, include_str!("fixtures/c2_bad.rs"));
    assert_eq!(got, vec![(RuleId::C2, 4), (RuleId::C2, 9)]);
}

#[test]
fn c2_good_is_silent_with_drop_between_locks() {
    let got = fired(C_SCOPE, include_str!("fixtures/c2_good.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn c3_bad_fires_on_channel_and_loop_growth() {
    let got = fired(C_SCOPE, include_str!("fixtures/c3_bad.rs"));
    assert_eq!(got, vec![(RuleId::C3, 4), (RuleId::C3, 12)]);
}

#[test]
fn c3_good_is_silent_with_sync_channel_and_cap() {
    let got = fired(C_SCOPE, include_str!("fixtures/c3_good.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn c3_is_scoped_to_the_service_crate() {
    let got = fired(
        "crates/pw-detect/src/fixture.rs",
        include_str!("fixtures/c3_bad.rs"),
    );
    assert!(got.iter().all(|(r, _)| *r != RuleId::C3), "{got:?}");
}

#[test]
fn c4_bad_fires_on_discarded_handles() {
    let got = fired(C_SCOPE, include_str!("fixtures/c4_bad.rs"));
    assert_eq!(got, vec![(RuleId::C4, 4), (RuleId::C4, 5)]);
}

#[test]
fn c4_good_is_silent_for_bound_and_tail_handles() {
    let got = fired(C_SCOPE, include_str!("fixtures/c4_good.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn c5_bad_fires_on_in_place_writes() {
    let got = fired(C_SCOPE, include_str!("fixtures/c5_bad.rs"));
    assert_eq!(got, vec![(RuleId::C5, 5), (RuleId::C5, 9)]);
}

#[test]
fn c5_good_is_silent_with_tmp_rename() {
    let got = fired(C_SCOPE, include_str!("fixtures/c5_good.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn c_rules_allowlist_roundtrip() {
    // The same baseline flow `--fix-allowlist` uses: emit entries for
    // every finding, parse them back, apply — everything allowed, nothing
    // stale, and the C rule ids survive the TOML round-trip.
    let src = include_str!("fixtures/c1_bad.rs");
    let mut diags = lint_source(C_SCOPE, src);
    assert!(!diags.is_empty());
    let entries: Vec<pw_lint::AllowEntry> = diags
        .iter()
        .map(|d| pw_lint::AllowEntry {
            rule: d.rule.as_str().to_owned(),
            path: d.path.clone(),
            contains: Some(d.snippet.clone()),
            line: None,
            reason: "fixture: blocking is the design here".to_owned(),
        })
        .collect();
    let parsed = pw_lint::allowlist::parse(&pw_lint::allowlist::emit(&entries)).unwrap();
    let stale = pw_lint::apply_allowlist(&mut diags, &parsed);
    assert_eq!(stale, 0);
    assert!(diags.iter().all(|d| d.allowed), "{diags:?}");
}
