//! The shared content catalog traders exchange.

use rand::RngCore;

use pw_netsim::sampling::{LogNormal, Zipf};

/// Identifier of a file in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub usize);

/// A catalog of shareable files with Zipf popularity and log-normal sizes —
/// "much of the data found on popular P2P file-sharing applications … are
/// large multimedia files (e.g., several MBytes in size)" (§IV-A).
///
/// # Examples
///
/// ```
/// use pw_traders::FileCatalog;
///
/// let catalog = FileCatalog::new(1000, 7);
/// let mut rng = pw_netsim::rng::derive(1, "pick");
/// let f = catalog.sample(&mut rng);
/// assert!(catalog.size_of(f) >= 64 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct FileCatalog {
    sizes: Vec<u64>,
    popularity: Zipf,
}

impl FileCatalog {
    /// Builds a catalog of `n_files` files, deterministically from `seed`.
    ///
    /// Sizes are log-normal with median ≈ 5 MB and p90 ≈ 180 MB, clamped to
    /// `[64 KiB, 2 GiB]` (MP3s through movies).
    ///
    /// # Panics
    ///
    /// Panics if `n_files == 0`.
    pub fn new(n_files: usize, seed: u64) -> Self {
        assert!(n_files > 0, "catalog cannot be empty");
        let dist = LogNormal::from_median_p90(5.0e6, 1.8e8);
        let mut rng = pw_netsim::rng::derive(seed, "file-catalog");
        let sizes = (0..n_files)
            .map(|_| (dist.sample(&mut rng) as u64).clamp(64 * 1024, 2 * 1024 * 1024 * 1024))
            .collect();
        Self {
            sizes,
            popularity: Zipf::new(n_files, 0.8),
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the catalog is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Draws a file according to popularity.
    pub fn sample(&self, rng: &mut dyn RngCore) -> FileId {
        FileId(self.popularity.sample(rng))
    }

    /// Size of a file in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn size_of(&self, id: FileId) -> u64 {
        self.sizes[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic() {
        let a = FileCatalog::new(100, 3);
        let b = FileCatalog::new(100, 3);
        assert_eq!(a.size_of(FileId(5)), b.size_of(FileId(5)));
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn sizes_in_multimedia_range() {
        let c = FileCatalog::new(500, 1);
        let mut mb_plus = 0;
        for i in 0..500 {
            let s = c.size_of(FileId(i));
            assert!((64 * 1024..=2 * 1024 * 1024 * 1024).contains(&s));
            if s > 1_000_000 {
                mb_plus += 1;
            }
        }
        assert!(
            mb_plus > 300,
            "most files should be MB-scale, got {mb_plus}"
        );
    }

    #[test]
    fn popular_files_drawn_more() {
        let c = FileCatalog::new(200, 2);
        let mut rng = pw_netsim::rng::derive(9, "draws");
        let mut head = 0;
        for _ in 0..2000 {
            if c.sample(&mut rng).0 < 20 {
                head += 1;
            }
        }
        assert!(head > 500, "Zipf head too cold: {head}");
    }
}
