//! An eMule / eDonkey file-sharing host.
//!
//! eMule's open-loop traffic (server lobby, multi-source transfers, upload
//! queue) is generated here; its Kad DHT participation runs on the real
//! Kademlia substrate in `pw-kad`, driven by the dataset builder with the
//! [`SessionPlan`] this model exposes via [`EmuleTrader::plan`] — call
//! `plan` and [`EmuleTrader::generate_with_plan`] with *independently
//! derived* RNG streams so the plan can be reproduced for the DHT driver.

use std::sync::Arc;

use rand::{Rng, RngCore};

use pw_apps::model::{ephemeral_port, HostContext, TrafficModel};
use pw_flow::signatures::build;
use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::PacketSink;
use pw_netsim::sampling::poisson;
use pw_netsim::{DiurnalProfile, SimDuration, SimTime};

use crate::catalog::FileCatalog;
use crate::session::SessionPlan;

/// eDonkey server TCP port.
pub const ED2K_SERVER_PORT: u16 = 4661;
/// eMule peer TCP port.
pub const EMULE_PEER_PORT: u16 = 4662;
/// eDonkey server UDP status port.
pub const ED2K_SERVER_UDP_PORT: u16 = 4665;

/// An eMule Trader.
///
/// eMule clients tend to run long sessions (the queue system rewards
/// staying online) and trickle from many slow sources in parallel — so this
/// Trader has longer sessions than the Gnutella one but keeps the same
/// signature features: large aggregate transfers, stale-cache failures, and
/// a content-driven, churning peer set.
#[derive(Debug, Clone)]
pub struct EmuleTrader {
    /// Shared content catalog.
    pub catalog: Arc<FileCatalog>,
    /// Expected sessions per day.
    pub mean_sessions: f64,
    /// Expected files being fetched per session.
    pub files_per_session: f64,
    /// Expected uploads served per session.
    pub uploads_per_session: f64,
}

impl EmuleTrader {
    /// A trader over `catalog` with default rates.
    pub fn new(catalog: Arc<FileCatalog>) -> Self {
        Self {
            catalog,
            mean_sessions: 1.1,
            files_per_session: 1.8,
            uploads_per_session: 2.0,
        }
    }

    /// Samples the host's session plan for the window.
    pub fn plan(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore) -> SessionPlan {
        SessionPlan::sample(
            rng,
            &DiurnalProfile::residential_evening(),
            self.mean_sessions,
            2.0 * 3600.0,
            12.0 * 3600.0,
            ctx.start,
            ctx.end,
        )
    }

    /// Generates the open-loop traffic for an externally provided plan.
    pub fn generate_with_plan(
        &self,
        ctx: &HostContext<'_>,
        plan: &SessionPlan,
        rng: &mut dyn RngCore,
        sink: &mut dyn PacketSink,
    ) {
        for &(s0, s1) in plan.intervals() {
            self.session(ctx, rng, sink, s0, s1);
        }
    }

    fn session(
        &self,
        ctx: &HostContext<'_>,
        rng: &mut dyn RngCore,
        sink: &mut dyn PacketSink,
        s0: SimTime,
        s1: SimTime,
    ) {
        // --- Lobby server connection (try the static server list). ---
        let mut t = s0;
        for _attempt in 0..8 {
            if t >= s1 {
                break;
            }
            let server = ctx.space.external("ed2k-server", rng.gen_range(0..8));
            if rng.gen_bool(0.3) {
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), server, ED2K_SERVER_PORT)
                        .outcome(ConnOutcome::NoAnswer),
                );
                t += SimDuration::from_secs(5);
            } else {
                let mins = (s1 - t).as_secs_f64() / 60.0;
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), server, ED2K_SERVER_PORT)
                        .outcome(ConnOutcome::Established {
                            bytes_up: (mins * 300.0) as u64 + 600,
                            bytes_down: (mins * 800.0) as u64 + 2_000,
                        })
                        .duration(s1 - t)
                        .payload(build::emule_hello().as_bytes()),
                );
                break;
            }
        }

        // --- Global server UDP status queries (many servers are dead). ---
        let mut tq = s0 + SimDuration::from_secs(rng.gen_range(30..300));
        while tq < s1 {
            let server = ctx.space.external("ed2k-server-udp", rng.gen_range(0..40));
            let spec = ConnSpec::udp(
                tq,
                ctx.ip,
                ED2K_SERVER_UDP_PORT,
                server,
                ED2K_SERVER_UDP_PORT,
            )
            .payload(build::emule_kad(0x96).as_bytes());
            if rng.gen_bool(0.5) {
                emit_connection(
                    sink,
                    &spec.outcome(ConnOutcome::UdpNoReply {
                        bytes_up: 6,
                        retries: 1,
                    }),
                );
            } else {
                emit_connection(
                    sink,
                    &spec.outcome(ConnOutcome::UdpExchange {
                        bytes_up: 6,
                        bytes_down: 30,
                    }),
                );
            }
            tq += SimDuration::from_secs_f64(rng.gen_range(180.0..600.0));
        }

        // --- Multi-source trickle downloads. ---
        let files = poisson(rng, self.files_per_session).max(1);
        for _ in 0..files {
            let off = rng.gen_range(0.0..((s1 - s0).as_secs_f64() * 0.6).max(1.0));
            let td = s0 + SimDuration::from_secs_f64(off);
            if td >= s1 {
                continue;
            }
            let file = self.catalog.sample(rng);
            let size = self.catalog.size_of(file);
            let sources = rng.gen_range(4..12usize);
            let mut ok_specs = Vec::new();
            for n in 0..sources {
                let peer = ctx.space.external("emule-peers", rng.gen_range(0..60_000));
                let ts = td + SimDuration::from_secs(3 * n as u64);
                if ts >= s1 {
                    break;
                }
                if rng.gen_bool(0.4) {
                    emit_connection(
                        sink,
                        &ConnSpec::tcp(ts, ctx.ip, ephemeral_port(rng), peer, EMULE_PEER_PORT)
                            .outcome(ConnOutcome::NoAnswer),
                    );
                } else {
                    ok_specs.push((ts, peer));
                }
            }
            if ok_specs.is_empty() {
                continue;
            }
            let share = size / ok_specs.len() as u64;
            for (ts, peer) in ok_specs {
                let rate = rng.gen_range(5_000.0..60_000.0); // slow parallel sources
                let secs = (share as f64 / rate).clamp(20.0, (s1 - ts).as_secs_f64().max(30.0));
                let got = ((rate * secs) as u64).min(share);
                emit_connection(
                    sink,
                    &ConnSpec::tcp(ts, ctx.ip, ephemeral_port(rng), peer, EMULE_PEER_PORT)
                        .outcome(ConnOutcome::Established {
                            bytes_up: 1_400,
                            bytes_down: got,
                        })
                        .duration(SimDuration::from_secs_f64(secs))
                        .payload(build::emule_hello().as_bytes()),
                );
            }
        }

        // --- Upload queue service (inbound). ---
        let uploads = poisson(rng, self.uploads_per_session);
        for _ in 0..uploads {
            let off = rng.gen_range(0.0..(s1 - s0).as_secs_f64().max(1.0));
            let tu = s0 + SimDuration::from_secs_f64(off);
            if tu >= s1 {
                continue;
            }
            let peer = ctx.space.external("emule-peers", rng.gen_range(0..60_000));
            let chunk = 9_728_000u64.min(self.catalog.size_of(self.catalog.sample(rng)));
            let rate = rng.gen_range(8_000.0..50_000.0);
            let secs = (chunk as f64 / rate).clamp(20.0, (s1 - tu).as_secs_f64().max(30.0));
            let sent = ((rate * secs) as u64).min(chunk);
            emit_connection(
                sink,
                &ConnSpec::tcp(tu, peer, ephemeral_port(rng), ctx.ip, EMULE_PEER_PORT)
                    .outcome(ConnOutcome::Established {
                        bytes_up: 1_500,
                        bytes_down: sent,
                    })
                    .duration(SimDuration::from_secs_f64(secs))
                    .payload(build::emule_hello().as_bytes()),
            );
        }
    }
}

impl TrafficModel for EmuleTrader {
    fn name(&self) -> &'static str {
        "emule"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let plan = self.plan(ctx, rng);
        self.generate_with_plan(ctx, &plan, rng, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::signatures::{classify_flow, P2pApp};
    use pw_flow::{ArgusAggregator, FlowRecord};
    use pw_netsim::AddressSpace;

    fn run_day(seed: u64) -> (std::net::Ipv4Addr, Vec<FlowRecord>) {
        let mut space = AddressSpace::campus();
        let ip = space.alloc_internal();
        let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(24));
        let mut rng = pw_netsim::rng::derive(seed, "emule-test");
        let trader = EmuleTrader::new(Arc::new(FileCatalog::new(500, 2)));
        let mut argus = ArgusAggregator::default();
        trader.generate(&ctx, &mut rng, &mut argus);
        (ip, argus.finish(SimTime::from_hours(30)))
    }

    #[test]
    fn emule_signature_present() {
        let (_, flows) = run_day(1);
        assert!(flows
            .iter()
            .any(|f| classify_flow(f) == Some(P2pApp::Emule)));
    }

    #[test]
    fn plan_reproducible_with_same_stream() {
        let space = AddressSpace::campus();
        let ctx = HostContext::new(
            std::net::Ipv4Addr::new(10, 1, 0, 9),
            &space,
            SimTime::ZERO,
            SimTime::from_hours(24),
        );
        let trader = EmuleTrader::new(Arc::new(FileCatalog::new(50, 2)));
        let mut r1 = pw_netsim::rng::derive(9, "plan");
        let mut r2 = pw_netsim::rng::derive(9, "plan");
        assert_eq!(trader.plan(&ctx, &mut r1), trader.plan(&ctx, &mut r2));
    }

    #[test]
    fn failures_and_volume_present() {
        let mut failed = 0;
        let mut total = 0;
        let mut big = false;
        for seed in 0..8 {
            let (ip, flows) = run_day(seed);
            for f in &flows {
                if f.src == ip {
                    total += 1;
                    if f.is_failed() {
                        failed += 1;
                    }
                }
                if f.bytes_uploaded_by(ip).unwrap_or(0) > 500_000 {
                    big = true;
                }
            }
        }
        let rate = failed as f64 / total.max(1) as f64;
        assert!(rate > 0.2, "failed rate {rate}");
        assert!(big, "no large upload flows");
    }

    #[test]
    fn many_distinct_peers_per_day() {
        let (ip, flows) = run_day(4);
        let peers: std::collections::HashSet<_> =
            flows.iter().filter_map(|f| f.peer_of(ip)).collect();
        assert!(peers.len() >= 10, "{}", peers.len());
    }
}
