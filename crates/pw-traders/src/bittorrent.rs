//! A BitTorrent host: tracker announces, swarms, tit-for-tat transfers.

use std::sync::Arc;

use rand::{Rng, RngCore};

use pw_apps::model::{ephemeral_port, HostContext, TrafficModel};
use pw_flow::signatures::build;
use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::PacketSink;
use pw_netsim::sampling::poisson;
use pw_netsim::{DiurnalProfile, SimDuration, SimTime};

use crate::catalog::{FileCatalog, FileId};
use crate::session::SessionPlan;

/// Conventional BitTorrent peer port.
pub const BT_PEER_PORT: u16 = 6881;

/// A BitTorrent Trader.
///
/// Each torrent produces an HTTP tracker announce (with periodic
/// re-announces — the one mildly *machine-like* timer a Trader has), a burst
/// of peer-wire connection attempts into the swarm (many dead peers), and
/// bidirectional tit-for-tat transfers with the live ones. Mainline-DHT
/// participation runs on `pw-kad`, aligned with [`BittorrentTrader::plan`].
#[derive(Debug, Clone)]
pub struct BittorrentTrader {
    /// Shared content catalog.
    pub catalog: Arc<FileCatalog>,
    /// Expected sessions per day.
    pub mean_sessions: f64,
    /// Expected torrents per session.
    pub torrents_per_session: f64,
    /// Expected inbound leechers served per session (seeding).
    pub seeds_per_session: f64,
}

impl BittorrentTrader {
    /// A trader over `catalog` with default rates.
    pub fn new(catalog: Arc<FileCatalog>) -> Self {
        Self {
            catalog,
            mean_sessions: 1.2,
            torrents_per_session: 1.4,
            seeds_per_session: 1.0,
        }
    }

    /// Samples the host's session plan for the window.
    pub fn plan(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore) -> SessionPlan {
        SessionPlan::sample(
            rng,
            &DiurnalProfile::residential_evening(),
            self.mean_sessions,
            45.0 * 60.0,
            6.0 * 3600.0,
            ctx.start,
            ctx.end,
        )
    }

    /// Generates the open-loop traffic for an externally provided plan.
    pub fn generate_with_plan(
        &self,
        ctx: &HostContext<'_>,
        plan: &SessionPlan,
        rng: &mut dyn RngCore,
        sink: &mut dyn PacketSink,
    ) {
        for &(s0, s1) in plan.intervals() {
            self.session(ctx, rng, sink, s0, s1);
        }
    }

    fn torrent(
        &self,
        ctx: &HostContext<'_>,
        rng: &mut dyn RngCore,
        sink: &mut dyn PacketSink,
        file: FileId,
        t0: SimTime,
        s1: SimTime,
    ) {
        let size = self.catalog.size_of(file);
        let swarm = format!("bt-swarm-{}", file.0);
        let tracker = ctx.space.external("bt-tracker", (file.0 % 200) as u64);

        // Peer-wire fan-out into the swarm.
        let attempts = rng.gen_range(12..30usize);
        let mut live = Vec::new();
        for n in 0..attempts {
            let peer = ctx.space.external(&swarm, rng.gen_range(0..400));
            let ts = t0 + SimDuration::from_millis(1_500 * n as u64 + 500);
            if ts >= s1 {
                break;
            }
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < 0.35 {
                emit_connection(
                    sink,
                    &ConnSpec::tcp(ts, ctx.ip, ephemeral_port(rng), peer, BT_PEER_PORT)
                        .outcome(ConnOutcome::NoAnswer),
                );
            } else if roll < 0.45 {
                emit_connection(
                    sink,
                    &ConnSpec::tcp(ts, ctx.ip, ephemeral_port(rng), peer, BT_PEER_PORT)
                        .outcome(ConnOutcome::Rejected),
                );
            } else if live.len() < 8 {
                live.push((ts, peer));
            }
        }

        // Transfer duration: aggregate rate ~0.3–2 MB/s across the swarm.
        let agg_rate = rng.gen_range(300_000.0..2_000_000.0);
        let dl_secs = (size as f64 / agg_rate).clamp(60.0, (s1 - t0).as_secs_f64().max(90.0));
        let t_end = (t0 + SimDuration::from_secs_f64(dl_secs)).min(s1);

        // Tracker announces: at start, then every 30 min until done.
        let mut ta = t0;
        while ta < t_end {
            emit_connection(
                sink,
                &ConnSpec::tcp(ta, ctx.ip, ephemeral_port(rng), tracker, 80)
                    .outcome(ConnOutcome::Established {
                        bytes_up: 420,
                        bytes_down: 1_800,
                    })
                    .duration(SimDuration::from_secs(1))
                    .payload(build::tracker_announce().as_bytes()),
            );
            ta += SimDuration::from_secs(1800);
        }

        if live.is_empty() {
            return;
        }
        let ratio: f64 = rng.gen_range(0.2..1.2);
        let down_share = size / live.len() as u64;
        let up_total = (size as f64 * ratio) as u64;
        let up_share = up_total / live.len() as u64;
        for (ts, peer) in live {
            let dur = (t_end - ts).max(SimDuration::from_secs(30));
            emit_connection(
                sink,
                &ConnSpec::tcp(ts, ctx.ip, ephemeral_port(rng), peer, BT_PEER_PORT)
                    .outcome(ConnOutcome::Established {
                        bytes_up: up_share + 700,
                        bytes_down: down_share,
                    })
                    .duration(dur)
                    .payload(build::bittorrent_handshake().as_bytes()),
            );
        }
    }

    fn session(
        &self,
        ctx: &HostContext<'_>,
        rng: &mut dyn RngCore,
        sink: &mut dyn PacketSink,
        s0: SimTime,
        s1: SimTime,
    ) {
        let torrents = poisson(rng, self.torrents_per_session).max(1);
        for _ in 0..torrents {
            let off = rng.gen_range(0.0..((s1 - s0).as_secs_f64() * 0.7).max(1.0));
            let t0 = s0 + SimDuration::from_secs_f64(off);
            if t0 >= s1 {
                continue;
            }
            let file = self.catalog.sample(rng);
            self.torrent(ctx, rng, sink, file, t0, s1);
        }

        // Seeding: inbound leechers fetch from us.
        let seeds = poisson(rng, self.seeds_per_session);
        for _ in 0..seeds {
            let off = rng.gen_range(0.0..(s1 - s0).as_secs_f64().max(1.0));
            let tu = s0 + SimDuration::from_secs_f64(off);
            if tu >= s1 {
                continue;
            }
            let file = self.catalog.sample(rng);
            let peer = ctx
                .space
                .external(&format!("bt-swarm-{}", file.0), rng.gen_range(0..400));
            let share = self.catalog.size_of(file) / rng.gen_range(2..6u64);
            let rate = rng.gen_range(50_000.0..400_000.0);
            let secs = (share as f64 / rate).clamp(30.0, (s1 - tu).as_secs_f64().max(60.0));
            let sent = ((rate * secs) as u64).min(share);
            emit_connection(
                sink,
                &ConnSpec::tcp(tu, peer, ephemeral_port(rng), ctx.ip, BT_PEER_PORT)
                    .outcome(ConnOutcome::Established {
                        bytes_up: 900,
                        bytes_down: sent,
                    })
                    .duration(SimDuration::from_secs_f64(secs))
                    .payload(build::bittorrent_handshake().as_bytes()),
            );
        }
    }
}

impl TrafficModel for BittorrentTrader {
    fn name(&self) -> &'static str {
        "bittorrent"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let plan = self.plan(ctx, rng);
        self.generate_with_plan(ctx, &plan, rng, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::signatures::{classify_flow, P2pApp};
    use pw_flow::{ArgusAggregator, FlowRecord};
    use pw_netsim::AddressSpace;

    fn run_day(seed: u64) -> (std::net::Ipv4Addr, Vec<FlowRecord>) {
        let mut space = AddressSpace::campus();
        let ip = space.alloc_internal();
        let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(24));
        let mut rng = pw_netsim::rng::derive(seed, "bt-test");
        let trader = BittorrentTrader::new(Arc::new(FileCatalog::new(500, 3)));
        let mut argus = ArgusAggregator::default();
        trader.generate(&ctx, &mut rng, &mut argus);
        (ip, argus.finish(SimTime::from_hours(30)))
    }

    #[test]
    fn bittorrent_signatures_present() {
        let (_, flows) = run_day(1);
        let bt = flows
            .iter()
            .filter(|f| classify_flow(f) == Some(P2pApp::BitTorrent))
            .count();
        assert!(bt > 3, "{bt} BT-signed flows");
    }

    #[test]
    fn tracker_announces_on_port_80() {
        let (_, flows) = run_day(2);
        assert!(flows
            .iter()
            .any(|f| f.dport == 80 && f.payload.as_bytes().starts_with(b"GET /announce")));
    }

    #[test]
    fn swarm_failures_are_common() {
        let mut failed = 0;
        let mut total = 0;
        for seed in 0..8 {
            let (ip, flows) = run_day(seed);
            for f in flows.iter().filter(|f| f.src == ip) {
                total += 1;
                if f.is_failed() {
                    failed += 1;
                }
            }
        }
        let rate = failed as f64 / total.max(1) as f64;
        assert!(rate > 0.2 && rate < 0.7, "failed rate {rate}");
    }

    #[test]
    fn bidirectional_transfer_volume() {
        let mut up_big = false;
        let mut down_big = false;
        for seed in 0..8 {
            let (ip, flows) = run_day(seed);
            for f in &flows {
                if f.bytes_uploaded_by(ip).unwrap_or(0) > 1_000_000 {
                    up_big = true;
                }
                if f.peer_of(ip).is_some()
                    && (f.src_bytes + f.dst_bytes) - f.bytes_uploaded_by(ip).unwrap_or(0)
                        > 1_000_000
                {
                    down_big = true;
                }
            }
        }
        assert!(up_big && down_big, "up {up_big} down {down_big}");
    }
}
