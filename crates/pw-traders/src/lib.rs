//! P2P file-sharing host models — the paper's **Traders**.
//!
//! Three protocol families, matching the paper's Trader dataset (§III):
//! [`GnutellaTrader`], [`EmuleTrader`], and [`BittorrentTrader`]. Each model
//! generates a host's daily traffic mechanistically — sessions started by a
//! human, ultrapeer/server/tracker bootstrap from stale caches (high failed
//! connection rates), multi-source transfers of catalog files (large
//! per-flow uploads and downloads), and peer sets driven by content
//! availability (high day-level churn in contacted IPs).
//!
//! Shared substrates:
//!
//! - [`FileCatalog`]: Zipf-popular content with log-normal (heavy-tailed)
//!   multimedia file sizes;
//! - [`SessionPlan`]: human session scheduling following the measurement
//!   studies the paper cites (most Traders appear once a day and stay
//!   connected for minutes, not hours);
//! - the wire signatures in [`pw_flow::signatures`], so every Trader flow
//!   ground-truth-labels itself exactly as the paper's payload scan would.
//!
//! DHT participation (eMule Kad, BitTorrent Mainline) runs on the *real*
//! Kademlia substrate in `pw-kad`; the dataset builder in `pw-data` aligns
//! each trader's DHT sessions with the [`SessionPlan`] exposed here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bittorrent;
pub mod catalog;
pub mod emule;
pub mod gnutella;
pub mod session;

pub use bittorrent::BittorrentTrader;
pub use catalog::{FileCatalog, FileId};
pub use emule::EmuleTrader;
pub use gnutella::GnutellaTrader;
pub use session::SessionPlan;
