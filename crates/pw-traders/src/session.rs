//! Human session scheduling for file-sharing hosts.
//!
//! The churn studies the paper cites (Stutzbach & Rejaie; Saroiu et al.;
//! Gummadi et al.) found that "most Traders appear only once a day, and
//! remain connected for short durations (minutes)" (§I). [`SessionPlan`]
//! reproduces that: a small number of sessions per day with log-normal
//! lengths whose median is minutes.

use rand::{Rng, RngCore};

use pw_netsim::sampling::LogNormal;
use pw_netsim::{DiurnalProfile, SimDuration, SimTime};

/// The online intervals of a P2P host within a day, sorted and
/// non-overlapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionPlan {
    intervals: Vec<(SimTime, SimTime)>,
}

impl SessionPlan {
    /// Samples a plan in `[start, end)`.
    ///
    /// `mean_sessions` sessions arrive per the diurnal `profile`; each lasts
    /// log-normal(`median_len_s`, `p90_len_s`). Overlapping sessions merge.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the length parameters are invalid.
    pub fn sample(
        rng: &mut dyn RngCore,
        profile: &DiurnalProfile,
        mean_sessions: f64,
        median_len_s: f64,
        p90_len_s: f64,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        assert!(end > start, "empty window");
        let hours = (end - start).as_secs_f64() / 3600.0;
        let length = LogNormal::from_median_p90(median_len_s, p90_len_s);
        // Peak arrival rate chosen so the expected count is ~mean_sessions.
        let rate = (mean_sessions / hours.max(0.01)) * 2.0;
        let mut arrivals = profile.sample_arrivals(rng, rate.max(1e-6), start, end);
        // Guarantee at least one session ("appear once a day").
        if arrivals.is_empty() {
            let offset = rng.gen_range(0.0..(end - start).as_secs_f64());
            arrivals.push(start + SimDuration::from_secs_f64(offset));
        }
        let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
        for s0 in arrivals {
            let len = length.sample(rng).clamp(60.0, 20.0 * 3600.0);
            let s1 = (s0 + SimDuration::from_secs_f64(len)).min(end);
            if s1 <= s0 {
                continue;
            }
            match intervals.last_mut() {
                Some(last) if s0 <= last.1 => last.1 = last.1.max(s1),
                _ => intervals.push((s0, s1)),
            }
        }
        Self { intervals }
    }

    /// A plan with explicit intervals (for tests and bot overlays).
    ///
    /// # Panics
    ///
    /// Panics if intervals are unsorted, overlapping, or empty ranges.
    pub fn from_intervals(intervals: Vec<(SimTime, SimTime)>) -> Self {
        for w in intervals.windows(2) {
            assert!(w[0].1 < w[1].0, "intervals must be sorted and disjoint");
        }
        for &(a, b) in &intervals {
            assert!(b > a, "empty interval");
        }
        Self { intervals }
    }

    /// The online intervals.
    pub fn intervals(&self) -> &[(SimTime, SimTime)] {
        &self.intervals
    }

    /// Total online time.
    pub fn online_time(&self) -> SimDuration {
        self.intervals
            .iter()
            .fold(SimDuration::ZERO, |acc, &(a, b)| acc + (b - a))
    }

    /// Whether the host is online at `t`.
    pub fn is_online(&self, t: SimTime) -> bool {
        self.intervals.iter().any(|&(a, b)| a <= t && t < b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> SessionPlan {
        let mut rng = pw_netsim::rng::derive(seed, "sessions");
        SessionPlan::sample(
            &mut rng,
            &DiurnalProfile::residential_evening(),
            1.3,
            20.0 * 60.0,
            3.0 * 3600.0,
            SimTime::ZERO,
            SimTime::from_hours(24),
        )
    }

    #[test]
    fn at_least_one_session() {
        for seed in 0..50 {
            assert!(!plan(seed).intervals().is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn intervals_sorted_disjoint_in_window() {
        for seed in 0..30 {
            let p = plan(seed);
            for w in p.intervals().windows(2) {
                assert!(w[0].1 < w[1].0);
            }
            for &(a, b) in p.intervals() {
                assert!(a < b);
                assert!(b <= SimTime::from_hours(24));
            }
        }
    }

    #[test]
    fn median_session_is_minutes_scale() {
        let mut lens: Vec<f64> = Vec::new();
        for seed in 0..300 {
            for &(a, b) in plan(seed).intervals() {
                lens.push((b - a).as_secs_f64());
            }
        }
        lens.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = lens[lens.len() / 2];
        assert!(med > 300.0 && med < 2.0 * 3600.0, "median session {med} s");
    }

    #[test]
    fn is_online_and_total_time() {
        let p = SessionPlan::from_intervals(vec![
            (SimTime::from_hours(1), SimTime::from_hours(2)),
            (SimTime::from_hours(5), SimTime::from_hours(6)),
        ]);
        assert!(p.is_online(SimTime::from_secs(3600)));
        assert!(!p.is_online(SimTime::from_hours(3)));
        assert_eq!(p.online_time(), SimDuration::from_hours(2));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn from_intervals_rejects_overlap() {
        SessionPlan::from_intervals(vec![
            (SimTime::from_hours(1), SimTime::from_hours(3)),
            (SimTime::from_hours(2), SimTime::from_hours(4)),
        ]);
    }
}
