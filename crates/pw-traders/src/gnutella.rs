//! A Gnutella file-sharing host (LimeWire-style leaf node).

use std::sync::Arc;

use rand::{Rng, RngCore};

use pw_apps::model::{ephemeral_port, HostContext, TrafficModel};
use pw_flow::signatures::build;
use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::PacketSink;
use pw_netsim::sampling::poisson;
use pw_netsim::{DiurnalProfile, SimDuration, SimTime};

use crate::catalog::FileCatalog;
use crate::session::SessionPlan;

/// Conventional Gnutella port.
pub const GNUTELLA_PORT: u16 = 6346;

/// A Gnutella Trader.
///
/// Per session: bootstrap from a stale host cache (≈half the candidates are
/// gone — the failed-connection signal of §V-A), hold a few ultrapeer
/// connections for the session, download files from multi-source result
/// sets (fresh peers every time — churn), and serve uploads to strangers.
#[derive(Debug, Clone)]
pub struct GnutellaTrader {
    /// Shared content catalog.
    pub catalog: Arc<FileCatalog>,
    /// Expected sessions per day (the cited studies: mostly one).
    pub mean_sessions: f64,
    /// Expected downloads per session.
    pub downloads_per_session: f64,
    /// Expected inbound uploads served per session.
    pub uploads_per_session: f64,
}

impl GnutellaTrader {
    /// A trader over `catalog` with the default (study-calibrated) rates.
    pub fn new(catalog: Arc<FileCatalog>) -> Self {
        Self {
            catalog,
            mean_sessions: 1.3,
            downloads_per_session: 1.6,
            uploads_per_session: 1.0,
        }
    }

    fn session(
        &self,
        ctx: &HostContext<'_>,
        rng: &mut dyn RngCore,
        sink: &mut dyn PacketSink,
        s0: SimTime,
        s1: SimTime,
    ) {
        let session_len = s1 - s0;
        // --- Ultrapeer bootstrap from the stale host cache. ---
        let mut connected = 0;
        let mut t = s0;
        for attempt in 0..24 {
            if connected >= 3 || t >= s1 {
                break;
            }
            let candidate = ctx.space.external("gnutella-up", rng.gen_range(0..4000));
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < 0.45 {
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), candidate, GNUTELLA_PORT)
                        .outcome(ConnOutcome::NoAnswer),
                );
            } else if roll < 0.55 {
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), candidate, GNUTELLA_PORT)
                        .outcome(ConnOutcome::Rejected),
                );
            } else {
                connected += 1;
                let dur = s1 - t;
                let mins = dur.as_secs_f64() / 60.0;
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), candidate, GNUTELLA_PORT)
                        .outcome(ConnOutcome::Established {
                            bytes_up: (mins * 1_200.0) as u64 + 400,
                            bytes_down: (mins * 3_500.0) as u64 + 900,
                        })
                        .duration(dur)
                        .payload(build::gnutella_connect().as_bytes()),
                );
            }
            t += SimDuration::from_millis(800 + 400 * attempt as u64);
        }

        // --- Downloads. ---
        let downloads = poisson(rng, self.downloads_per_session).max(1);
        for _ in 0..downloads {
            let off = rng.gen_range(0.0..session_len.as_secs_f64().max(1.0));
            let td = s0 + SimDuration::from_secs_f64(off);
            if td >= s1 {
                continue;
            }
            let file = self.catalog.sample(rng);
            let size = self.catalog.size_of(file);
            let sources = rng.gen_range(2..6usize);
            let mut succeeded = 0u64;
            let mut specs = Vec::new();
            for srcn in 0..sources {
                let peer = ctx
                    .space
                    .external("gnutella-peers", rng.gen_range(0..40_000));
                let ts = td + SimDuration::from_secs(2 * srcn as u64);
                if rng.gen_bool(0.35) {
                    emit_connection(
                        sink,
                        &ConnSpec::tcp(ts, ctx.ip, ephemeral_port(rng), peer, GNUTELLA_PORT)
                            .outcome(ConnOutcome::NoAnswer),
                    );
                } else {
                    succeeded += 1;
                    specs.push((ts, peer));
                }
            }
            if succeeded == 0 {
                continue;
            }
            let share = size / succeeded;
            for (ts, peer) in specs {
                let rate = rng.gen_range(30_000.0..250_000.0);
                let secs = (share as f64 / rate).clamp(5.0, (s1 - ts).as_secs_f64().max(10.0));
                emit_connection(
                    sink,
                    &ConnSpec::tcp(ts, ctx.ip, ephemeral_port(rng), peer, GNUTELLA_PORT)
                        .outcome(ConnOutcome::Established {
                            bytes_up: 900,
                            bytes_down: share,
                        })
                        .duration(SimDuration::from_secs_f64(secs))
                        .payload(b"GET /get/7/track.mp3 HTTP/1.1\r\nUser-Agent: LimeWire/4.12\r\n"),
                );
            }
        }

        // --- Uploads served to strangers (inbound connections). ---
        let uploads = poisson(rng, self.uploads_per_session);
        for _ in 0..uploads {
            let off = rng.gen_range(0.0..session_len.as_secs_f64().max(1.0));
            let tu = s0 + SimDuration::from_secs_f64(off);
            if tu >= s1 {
                continue;
            }
            let stranger = ctx
                .space
                .external("gnutella-peers", rng.gen_range(0..40_000));
            let file = self.catalog.sample(rng);
            let share = self.catalog.size_of(file) / rng.gen_range(1..4u64);
            let rate = rng.gen_range(20_000.0..120_000.0);
            let secs = (share as f64 / rate).clamp(5.0, (s1 - tu).as_secs_f64().max(10.0));
            emit_connection(
                sink,
                &ConnSpec::tcp(tu, stranger, ephemeral_port(rng), ctx.ip, GNUTELLA_PORT)
                    .outcome(ConnOutcome::Established {
                        bytes_up: 850,
                        bytes_down: share,
                    })
                    .duration(SimDuration::from_secs_f64(secs))
                    .payload(b"GET /get/9/video.avi HTTP/1.1\r\nUser-Agent: LimeWire/4.10\r\n"),
            );
        }
    }
}

impl TrafficModel for GnutellaTrader {
    fn name(&self) -> &'static str {
        "gnutella"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let plan = SessionPlan::sample(
            rng,
            &DiurnalProfile::residential_evening(),
            self.mean_sessions,
            20.0 * 60.0,
            3.0 * 3600.0,
            ctx.start,
            ctx.end,
        );
        for &(s0, s1) in plan.intervals() {
            self.session(ctx, rng, sink, s0, s1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::signatures::{classify_flow, P2pApp};
    use pw_flow::{ArgusAggregator, FlowRecord};
    use pw_netsim::AddressSpace;

    fn run_day(seed: u64) -> (std::net::Ipv4Addr, Vec<FlowRecord>) {
        let mut space = AddressSpace::campus();
        let ip = space.alloc_internal();
        let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(24));
        let mut rng = pw_netsim::rng::derive(seed, "gnutella-test");
        let trader = GnutellaTrader::new(Arc::new(FileCatalog::new(500, 1)));
        let mut argus = ArgusAggregator::default();
        trader.generate(&ctx, &mut rng, &mut argus);
        (ip, argus.finish(SimTime::from_hours(30)))
    }

    #[test]
    fn produces_signature_labelled_flows() {
        let (_, flows) = run_day(1);
        let gnut = flows
            .iter()
            .filter(|f| classify_flow(f) == Some(P2pApp::Gnutella))
            .count();
        assert!(gnut > 0, "no Gnutella-signed flows among {}", flows.len());
    }

    #[test]
    fn failed_connection_rate_is_high() {
        let mut failed = 0usize;
        let mut total = 0usize;
        for seed in 0..10 {
            let (ip, flows) = run_day(seed);
            let initiated: Vec<_> = flows.iter().filter(|f| f.src == ip).collect();
            failed += initiated.iter().filter(|f| f.is_failed()).count();
            total += initiated.len();
        }
        let rate = failed as f64 / total as f64;
        assert!(rate > 0.25, "failed rate too low for a P2P host: {rate}");
        assert!(rate < 0.8, "failed rate implausibly high: {rate}");
    }

    #[test]
    fn uploads_give_large_flows() {
        let mut best = 0u64;
        for seed in 0..10 {
            let (ip, flows) = run_day(seed);
            for f in &flows {
                best = best.max(f.bytes_uploaded_by(ip).unwrap_or(0));
            }
        }
        assert!(best > 1_000_000, "no MB-scale upload found (best {best})");
    }

    #[test]
    fn contacts_many_distinct_peers() {
        let (ip, flows) = run_day(3);
        let peers: std::collections::HashSet<_> =
            flows.iter().filter_map(|f| f.peer_of(ip)).collect();
        assert!(peers.len() >= 10, "{} peers", peers.len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_day(6).1, run_day(6).1);
    }
}
