//! Property-based tests for the Trader models.

use std::sync::Arc;

use proptest::prelude::*;
use pw_apps::model::{HostContext, TrafficModel};
use pw_flow::signatures::{classify_flow, P2pApp};
use pw_flow::ArgusAggregator;
use pw_netsim::{AddressSpace, DiurnalProfile, SimDuration, SimTime};
use pw_traders::{BittorrentTrader, EmuleTrader, FileCatalog, GnutellaTrader, SessionPlan};

fn run_model(
    model: &dyn TrafficModel,
    seed: u64,
    hours: u64,
) -> (std::net::Ipv4Addr, Vec<pw_flow::FlowRecord>) {
    let mut space = AddressSpace::campus();
    let ip = space.alloc_internal();
    let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(hours));
    let mut rng = pw_netsim::rng::derive(seed, model.name());
    let mut argus = ArgusAggregator::default();
    model.generate(&ctx, &mut rng, &mut argus);
    (ip, argus.finish(SimTime::from_hours(hours + 8)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All three trader models only ever sign flows with their own
    /// protocol family, involve their host, and stay within the window.
    #[test]
    fn trader_flows_are_well_formed(seed in 0u64..400, hours in 4u64..10) {
        let catalog = Arc::new(FileCatalog::new(120, 5));
        let models: [(&dyn TrafficModel, P2pApp); 3] = [
            (&GnutellaTrader::new(Arc::clone(&catalog)), P2pApp::Gnutella),
            (&EmuleTrader::new(Arc::clone(&catalog)), P2pApp::Emule),
            (&BittorrentTrader::new(Arc::clone(&catalog)), P2pApp::BitTorrent),
        ];
        for (model, app) in models {
            let (ip, flows) = run_model(model, seed, hours);
            prop_assert!(!flows.is_empty(), "{} generated nothing", model.name());
            for f in &flows {
                prop_assert!(f.involves(ip));
                prop_assert!(f.start < SimTime::from_hours(hours));
                if let Some(got) = classify_flow(f) {
                    prop_assert_eq!(got, app, "{} emitted a {} signature", model.name(), got);
                }
            }
        }
    }

    /// Trader generation is a pure function of its seed.
    #[test]
    fn trader_generation_deterministic(seed in 0u64..400) {
        let catalog = Arc::new(FileCatalog::new(60, 9));
        let t = GnutellaTrader::new(catalog);
        let a = run_model(&t, seed, 5);
        let b = run_model(&t, seed, 5);
        prop_assert_eq!(a, b);
    }

    /// Session plans: sorted, disjoint, within the window, non-empty.
    #[test]
    fn session_plan_invariants(
        seed in 0u64..1_000,
        mean in 0.2f64..4.0,
        median_mins in 2.0f64..120.0,
        window_h in 2u64..24,
    ) {
        let mut rng = pw_netsim::rng::derive(seed, "plan-props");
        let plan = SessionPlan::sample(
            &mut rng,
            &DiurnalProfile::residential_evening(),
            mean,
            median_mins * 60.0,
            median_mins * 60.0 * 8.0,
            SimTime::ZERO,
            SimTime::from_hours(window_h),
        );
        prop_assert!(!plan.intervals().is_empty());
        for w in plan.intervals().windows(2) {
            prop_assert!(w[0].1 < w[1].0, "overlap");
        }
        let mut online = SimDuration::ZERO;
        for &(a, b) in plan.intervals() {
            prop_assert!(a < b);
            prop_assert!(b <= SimTime::from_hours(window_h));
            online = online + (b - a);
        }
        prop_assert_eq!(plan.online_time(), online);
    }

    /// File catalog: deterministic sizes in the documented range, sampling
    /// never out of bounds.
    #[test]
    fn catalog_invariants(n in 1usize..500, seed: u64) {
        let c = FileCatalog::new(n, seed);
        prop_assert_eq!(c.len(), n);
        let mut rng = pw_netsim::rng::derive(seed, "catalog-props");
        for _ in 0..20 {
            let f = c.sample(&mut rng);
            let size = c.size_of(f);
            prop_assert!((64 * 1024..=2 * 1024 * 1024 * 1024).contains(&size));
        }
    }
}
