//! Property-based tests for the statistical substrate.

use proptest::prelude::*;
use pw_analysis::{average_linkage, emd_1d, iqr, percentile, DistanceMatrix, Ecdf, Histogram};

fn finite_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, 1..max_len)
}

fn masses(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1.0e4f64..1.0e4, 0.01f64..10.0), 1..max_len)
}

proptest! {
    #[test]
    fn percentile_is_monotone_in_p(xs in finite_samples(64), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&xs, lo).unwrap();
        let b = percentile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn percentile_within_sample_range(xs in finite_samples(64), p in 0.0f64..100.0) {
        let v = percentile(&xs, p).unwrap();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn iqr_is_nonnegative(xs in finite_samples(64)) {
        prop_assert!(iqr(&xs).unwrap() >= 0.0);
    }

    #[test]
    fn histogram_conserves_mass(xs in finite_samples(256)) {
        let h = Histogram::freedman_diaconis(&xs).unwrap();
        let total: f64 = h.counts().iter().sum();
        prop_assert!((total - xs.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn histogram_point_masses_sum_to_one(xs in finite_samples(256)) {
        let h = Histogram::freedman_diaconis(&xs).unwrap();
        let mass: f64 = h.point_masses().iter().map(|&(_, w)| w).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn emd_identity(a in masses(32)) {
        prop_assert!(emd_1d(&a, &a) < 1e-9);
    }

    #[test]
    fn emd_symmetry(a in masses(32), b in masses(32)) {
        let ab = emd_1d(&a, &b);
        let ba = emd_1d(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn emd_triangle_inequality(a in masses(16), b in masses(16), c in masses(16)) {
        let ab = emd_1d(&a, &b);
        let bc = emd_1d(&b, &c);
        let ac = emd_1d(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn emd_nonnegative_and_bounded_by_span(a in masses(32), b in masses(32)) {
        let d = emd_1d(&a, &b);
        prop_assert!(d >= 0.0);
        let lo = a.iter().chain(&b).map(|&(x, _)| x).fold(f64::INFINITY, f64::min);
        let hi = a.iter().chain(&b).map(|&(x, _)| x).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(d <= (hi - lo) + 1e-9);
    }

    #[test]
    fn ecdf_is_monotone(xs in finite_samples(64), q1 in -1.0e6f64..1.0e6, q2 in -1.0e6f64..1.0e6) {
        let cdf = Ecdf::new(xs);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(cdf.eval(lo) <= cdf.eval(hi));
    }

    #[test]
    fn dendrogram_cut_is_partition(pos in prop::collection::vec(-1.0e3f64..1.0e3, 2..24), f in 0.0f64..1.0) {
        let n = pos.len();
        let dm = DistanceMatrix::from_fn(n, |i, j| (pos[i] - pos[j]).abs());
        let dd = average_linkage(&dm);
        let clusters = dd.cut_top_fraction(f);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn dendrogram_heights_sorted(pos in prop::collection::vec(-1.0e3f64..1.0e3, 2..24)) {
        let n = pos.len();
        let dm = DistanceMatrix::from_fn(n, |i, j| (pos[i] - pos[j]).abs());
        let dd = average_linkage(&dm);
        prop_assert_eq!(dd.merges().len(), n - 1);
        for w in dd.merges().windows(2) {
            prop_assert!(w[1].height >= w[0].height - 1e-9);
        }
    }

    #[test]
    fn cluster_diameter_bounded_by_global_max(pos in prop::collection::vec(-1.0e3f64..1.0e3, 2..24)) {
        let n = pos.len();
        let dm = DistanceMatrix::from_fn(n, |i, j| (pos[i] - pos[j]).abs());
        let global = dm.diameter(&(0..n).collect::<Vec<_>>());
        let dd = average_linkage(&dm);
        for cl in dd.cut_top_fraction(0.3) {
            prop_assert!(dm.diameter(&cl) <= global + 1e-9);
        }
    }
}
