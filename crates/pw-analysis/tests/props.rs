//! Property-based tests for the statistical substrate.

use proptest::prelude::*;
use pw_analysis::{
    average_linkage, bucketed_average_linkage, embedding_lower_bound, emd_1d, emd_cdf, iqr,
    kmeans_partition, percentile, quantile_embedding, CdfRepr, Dendrogram, DistanceMatrix, Ecdf,
    FillTuning, Histogram,
};

fn finite_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, 1..max_len)
}

fn masses(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1.0e4f64..1.0e4, 0.01f64..10.0), 1..max_len)
}

/// Builds an `n`-leaf matrix from a flat entry pool (the pool is drawn at
/// the largest size the test may need and indexed condensed-style).
fn matrix_from_pool(n: usize, pool: &[f64]) -> DistanceMatrix {
    DistanceMatrix::from_fn(n, |i, j| pool[i * n - i * (i + 1) / 2 + (j - i - 1)])
}

/// Mean pairwise distance between two leaf sets, straight from the input
/// matrix — the definitional average-linkage merge height.
fn avg_leaf_distance(dm: &DistanceMatrix, a: &[usize], b: &[usize]) -> f64 {
    let mut sum = 0.0;
    for &i in a {
        for &j in b {
            sum += dm.get(i, j);
        }
    }
    sum / (a.len() * b.len()) as f64
}

/// O(n^3) textbook UPGMA: scan all cluster pairs for the global minimum
/// average distance (first pair in ascending scan order on ties), merge,
/// repeat. Returns each merge as (left leaves, right leaves, height).
#[allow(clippy::type_complexity)]
fn naive_upgma(dm: &DistanceMatrix) -> Vec<(Vec<usize>, Vec<usize>, f64)> {
    let mut clusters: Vec<Vec<usize>> = (0..dm.len()).map(|i| vec![i]).collect();
    let mut merges = Vec::new();
    while clusters.len() > 1 {
        let (mut bi, mut bj) = (0, 1);
        let mut best = f64::INFINITY;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let d = avg_leaf_distance(dm, &clusters[i], &clusters[j]);
                if d < best {
                    best = d;
                    (bi, bj) = (i, j);
                }
            }
        }
        let right = clusters.remove(bj);
        let left = clusters[bi].clone();
        merges.push((left.clone(), right.clone(), best));
        clusters[bi].extend(right.iter().copied());
        clusters[bi].sort_unstable();
    }
    merges
}

/// Expands a dendrogram's SciPy-style merge ids back into the two child
/// leaf sets (sorted) of every merge.
#[allow(clippy::type_complexity)]
fn merge_leaf_sets(dd: &Dendrogram) -> Vec<(Vec<usize>, Vec<usize>, f64)> {
    let n = dd.n_leaves();
    let mut sets: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut out = Vec::new();
    for m in dd.merges() {
        let a = sets[m.left].clone();
        let b = sets[m.right].clone();
        let mut union = a.clone();
        union.extend(b.iter().copied());
        union.sort_unstable();
        out.push((a, b, m.height));
        sets.push(union);
    }
    out
}

proptest! {
    #[test]
    fn percentile_is_monotone_in_p(xs in finite_samples(64), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&xs, lo).unwrap();
        let b = percentile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn percentile_within_sample_range(xs in finite_samples(64), p in 0.0f64..100.0) {
        let v = percentile(&xs, p).unwrap();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn iqr_is_nonnegative(xs in finite_samples(64)) {
        prop_assert!(iqr(&xs).unwrap() >= 0.0);
    }

    #[test]
    fn histogram_conserves_mass(xs in finite_samples(256)) {
        let h = Histogram::freedman_diaconis(&xs).unwrap();
        let total: f64 = h.counts().iter().sum();
        prop_assert!((total - xs.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn histogram_point_masses_sum_to_one(xs in finite_samples(256)) {
        let h = Histogram::freedman_diaconis(&xs).unwrap();
        let mass: f64 = h.point_masses().iter().map(|&(_, w)| w).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn emd_identity(a in masses(32)) {
        prop_assert!(emd_1d(&a, &a) < 1e-9);
    }

    #[test]
    fn emd_symmetry(a in masses(32), b in masses(32)) {
        let ab = emd_1d(&a, &b);
        let ba = emd_1d(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn emd_triangle_inequality(a in masses(16), b in masses(16), c in masses(16)) {
        let ab = emd_1d(&a, &b);
        let bc = emd_1d(&b, &c);
        let ac = emd_1d(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn emd_nonnegative_and_bounded_by_span(a in masses(32), b in masses(32)) {
        let d = emd_1d(&a, &b);
        prop_assert!(d >= 0.0);
        let lo = a.iter().chain(&b).map(|&(x, _)| x).fold(f64::INFINITY, f64::min);
        let hi = a.iter().chain(&b).map(|&(x, _)| x).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(d <= (hi - lo) + 1e-9);
    }

    #[test]
    fn ecdf_is_monotone(xs in finite_samples(64), q1 in -1.0e6f64..1.0e6, q2 in -1.0e6f64..1.0e6) {
        let cdf = Ecdf::new(xs);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(cdf.eval(lo) <= cdf.eval(hi));
    }

    #[test]
    fn dendrogram_cut_is_partition(pos in prop::collection::vec(-1.0e3f64..1.0e3, 2..24), f in 0.0f64..1.0) {
        let n = pos.len();
        let dm = DistanceMatrix::from_fn(n, |i, j| (pos[i] - pos[j]).abs());
        let dd = average_linkage(&dm);
        let clusters = dd.cut_top_fraction(f);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn dendrogram_heights_sorted(pos in prop::collection::vec(-1.0e3f64..1.0e3, 2..24)) {
        let n = pos.len();
        let dm = DistanceMatrix::from_fn(n, |i, j| (pos[i] - pos[j]).abs());
        let dd = average_linkage(&dm);
        prop_assert_eq!(dd.merges().len(), n - 1);
        for w in dd.merges().windows(2) {
            prop_assert!(w[1].height >= w[0].height - 1e-9);
        }
    }

    #[test]
    fn cluster_diameter_bounded_by_global_max(pos in prop::collection::vec(-1.0e3f64..1.0e3, 2..24)) {
        let n = pos.len();
        let dm = DistanceMatrix::from_fn(n, |i, j| (pos[i] - pos[j]).abs());
        let global = dm.diameter(&(0..n).collect::<Vec<_>>());
        let dd = average_linkage(&dm);
        for cl in dd.cut_top_fraction(0.3) {
            prop_assert!(dm.diameter(&cl) <= global + 1e-9);
        }
    }

    /// The prefix-sum kernel must reproduce `emd_1d` bit-for-bit on any
    /// positive-mass point set — this is the contract `theta_hm` relies on
    /// for byte-identical detector output.
    #[test]
    fn emd_cdf_bitwise_equals_emd_1d(a in masses(32), b in masses(32)) {
        let ra = CdfRepr::from_point_masses(&a);
        let rb = CdfRepr::from_point_masses(&b);
        prop_assert_eq!(emd_cdf(&ra, &rb).to_bits(), emd_1d(&a, &b).to_bits());
    }

    /// With all-distinct distances the NN-chain dendrogram must match the
    /// O(n^3) textbook UPGMA oracle merge for merge.
    #[test]
    fn nn_chain_matches_naive_upgma(
        n in 2usize..25,
        pool in prop::collection::vec(0.01f64..100.0, 300..301),
    ) {
        let dm = matrix_from_pool(n, &pool);
        let mut seen = std::collections::HashSet::new();
        prop_assume!(dm.condensed().iter().all(|d| seen.insert(d.to_bits())));
        let fast = merge_leaf_sets(&average_linkage(&dm));
        let naive = naive_upgma(&dm);
        prop_assert_eq!(fast.len(), naive.len());
        for ((fa, fb, fh), (na, nb, nh)) in fast.into_iter().zip(naive) {
            prop_assert!((fh - nh).abs() <= 1e-9 * nh.max(1.0), "height {fh} vs oracle {nh}");
            // Each merge is an unordered pair of (sorted) leaf sets.
            let fast_pair = if fa[0] <= fb[0] { (fa, fb) } else { (fb, fa) };
            let naive_pair = if na[0] <= nb[0] { (na, nb) } else { (nb, na) };
            prop_assert_eq!(fast_pair, naive_pair);
        }
    }

    /// The satellite contract of the sub-quadratic θ_hm: the quantile
    /// embedding's certified bound must never exceed the exact EMD — as a
    /// raw `f64` comparison (slack bitwise ≥ 0.0), not merely up to an
    /// epsilon, on random point-mass pairs at several quantile counts.
    #[test]
    fn embedding_lower_bounds_emd_cdf_bitwise(
        a in masses(40),
        b in masses(40),
        qi in 0usize..6,
    ) {
        let q = [2usize, 3, 8, 16, 64, 256][qi];
        let ra = CdfRepr::from_point_masses(&a);
        let rb = CdfRepr::from_point_masses(&b);
        let lb = embedding_lower_bound(&quantile_embedding(&ra, q), &quantile_embedding(&rb, q));
        let exact = emd_cdf(&ra, &rb);
        let slack = exact - lb;
        prop_assert!(slack >= 0.0, "q={q}: lower bound {lb} exceeds exact {exact}");
        prop_assert!(lb >= 0.0 && lb.is_finite());
    }

    /// The embedding itself is monotone nondecreasing and pinned to the
    /// support extremes — pure lookups, so these hold exactly.
    #[test]
    fn quantile_embedding_is_monotone_with_exact_endpoints(
        a in masses(40),
        q in 1usize..100,
    ) {
        let ra = CdfRepr::from_point_masses(&a);
        let v = quantile_embedding(&ra, q);
        prop_assert_eq!(v.len(), q + 1);
        prop_assert_eq!(v[0].to_bits(), ra.min_position().unwrap().to_bits());
        prop_assert_eq!(v[q].to_bits(), ra.max_position().unwrap().to_bits());
        for w in v.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// k-means bucketing always yields a partition of 0..n into non-empty,
    /// ascending, boundedly-sized buckets — for any embeddings, including
    /// fully degenerate ones.
    #[test]
    fn kmeans_partition_is_valid(
        embeds in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3..4), 1..120),
        target in 1usize..20,
        rounds in 0usize..4,
    ) {
        let buckets = kmeans_partition(&embeds, target, rounds);
        let mut all: Vec<usize> = buckets.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..embeds.len()).collect::<Vec<_>>());
        for b in &buckets {
            prop_assert!(!b.is_empty());
            prop_assert!(b.len() <= 2 * target);
            prop_assert!(b.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// The stitched bucketed linkage always produces a structurally valid
    /// dendrogram (n−1 merges, sorted heights, cuts partition the leaves)
    /// over any partition k-means produces.
    #[test]
    fn bucketed_linkage_is_well_formed(
        pos in prop::collection::vec(-1.0e3f64..1.0e3, 2..40),
        target in 1usize..12,
        f in 0.0f64..1.0,
    ) {
        let n = pos.len();
        let embeds: Vec<Vec<f64>> = pos.iter().map(|&p| vec![p]).collect();
        let buckets = kmeans_partition(&embeds, target, 2);
        let got = bucketed_average_linkage(n, &buckets, 1, FillTuning::default(), |i, j| {
            (pos[i] - pos[j]).abs()
        });
        prop_assert_eq!(got.dendrogram.merges().len(), n - 1);
        for w in got.dendrogram.merges().windows(2) {
            prop_assert!(w[1].height >= w[0].height);
        }
        let clusters = got.dendrogram.cut_top_fraction(f);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// Under heavy ties the merge *order* is tie-break dependent, but every
    /// recorded height must still equal the definitional mean leaf-to-leaf
    /// distance between the two clusters it joined, and heights must be
    /// nondecreasing. This pins the Lance–Williams update and condensed
    /// indexing without assuming a particular tie-break.
    #[test]
    fn nn_chain_heights_are_definitional_under_ties(
        n in 2usize..65,
        picks in prop::collection::vec(0usize..3, 2016..2017),
    ) {
        let levels = [1.0f64, 2.0, 4.0];
        let pool: Vec<f64> = picks.into_iter().map(|k| levels[k]).collect();
        let dm = matrix_from_pool(n, &pool);
        let dd = average_linkage(&dm);
        prop_assert_eq!(dd.merges().len(), dm.len() - 1);
        let merges = merge_leaf_sets(&dd);
        let mut prev = f64::NEG_INFINITY;
        for (a, b, h) in merges {
            prop_assert!(h >= prev - 1e-9);
            prev = h;
            let def = avg_leaf_distance(&dm, &a, &b);
            prop_assert!((h - def).abs() <= 1e-9 * def.max(1.0), "height {h} vs definitional {def}");
        }
    }
}
