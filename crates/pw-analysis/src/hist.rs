//! Histogram density estimation.
//!
//! The paper's human-vs-machine test (`θ_hm`, §IV-C) approximates each host's
//! per-destination flow interstitial-time distribution with a histogram whose
//! bin width follows the Freedman–Diaconis rule
//! `b = 2 · IQR(v) · |v|^(-1/3)`, which minimizes the mean-squared error
//! between histogram and true density. [`Histogram::freedman_diaconis`]
//! implements exactly that, with documented fallbacks for degenerate samples.

use serde::{Deserialize, Serialize};

use crate::stats::iqr;

/// Maximum number of bins a histogram constructor will create.
///
/// The FD rule can explode for heavy-tailed samples whose IQR is tiny
/// relative to their range; capping bins bounds memory while keeping the
/// estimate faithful for the distributions that matter here (interstitial
/// times within one day).
pub const MAX_BINS: usize = 4096;

/// A one-dimensional histogram over `f64` values.
///
/// Bins are uniform-width, covering `[min, max]` of the construction sample;
/// the final bin is closed on the right so `max` itself is counted.
///
/// # Examples
///
/// ```
/// use pw_analysis::Histogram;
///
/// let h = Histogram::with_bin_width(&[0.0, 0.4, 1.2, 1.3], 1.0).unwrap();
/// assert_eq!(h.num_bins(), 2);
/// assert_eq!(h.counts(), &[2.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    origin: f64,
    bin_width: f64,
    counts: Vec<f64>,
    total: f64,
}

impl Histogram {
    /// Builds a histogram using the Freedman–Diaconis bin-width rule.
    ///
    /// Returns `None` if `samples` is empty.
    ///
    /// Fallbacks for degenerate inputs (both documented in DESIGN.md):
    /// - if the FD width is zero (IQR = 0, e.g. perfectly periodic traffic),
    ///   the width falls back to `range / sqrt(n)` and, if the range is also
    ///   zero (all samples identical), to a single bin of width 1 centred on
    ///   the value;
    /// - the bin count is capped at [`MAX_BINS`].
    ///
    /// # Examples
    ///
    /// ```
    /// use pw_analysis::Histogram;
    ///
    /// let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
    /// let h = Histogram::freedman_diaconis(&samples).unwrap();
    /// assert!((h.total_mass() - 100.0).abs() < 1e-9);
    /// ```
    pub fn freedman_diaconis(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let spread = iqr(samples).expect("non-empty");
        let mut width = 2.0 * spread * n.powf(-1.0 / 3.0);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = max - min;
        if width <= 0.0 {
            width = if range > 0.0 { range / n.sqrt() } else { 1.0 };
        }
        Self::with_bin_width(samples, width)
    }

    /// Builds a histogram with an explicit `bin_width` over `samples`.
    ///
    /// Returns `None` if `samples` is empty. The number of bins is capped at
    /// [`MAX_BINS`] (the width is widened to compensate).
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not finite and positive.
    pub fn with_bin_width(samples: &[f64], bin_width: f64) -> Option<Self> {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin width must be finite and positive"
        );
        if samples.is_empty() {
            return None;
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = max - min;
        let mut width = bin_width;
        let mut bins = ((range / width).ceil() as usize).max(1);
        if range > 0.0 && (range / width).fract() == 0.0 {
            // `max` would land exactly on the upper edge; final closed bin
            // handles it, no extra bin needed.
        }
        if bins > MAX_BINS {
            bins = MAX_BINS;
            width = range / bins as f64;
        }
        let mut counts = vec![0.0; bins];
        for &s in samples {
            let mut idx = ((s - min) / width) as usize;
            if idx >= bins {
                idx = bins - 1; // s == max (or fp rounding): closed last bin
            }
            counts[idx] += 1.0;
        }
        Some(Self {
            origin: min,
            bin_width: width,
            counts,
            total: samples.len() as f64,
        })
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width in the sample's units.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Left edge of the first bin.
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Sum of all counts (the construction sample size).
    pub fn total_mass(&self) -> f64 {
        self.total
    }

    /// Centre of bin `i` on the value axis.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_bins()`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        self.origin + (i as f64 + 0.5) * self.bin_width
    }

    /// The histogram as normalized point masses `(bin centre, probability)`,
    /// skipping empty bins. Masses sum to 1 for non-empty histograms.
    ///
    /// This is the representation consumed by
    /// [`emd_1d`](crate::emd::emd_1d).
    pub fn point_masses(&self) -> Vec<(f64, f64)> {
        if self.total == 0.0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(i, &c)| (self.bin_center(i), c / self.total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_return_none() {
        assert!(Histogram::freedman_diaconis(&[]).is_none());
        assert!(Histogram::with_bin_width(&[], 1.0).is_none());
    }

    #[test]
    fn fd_rule_matches_formula() {
        // 8 evenly spaced samples: IQR = 3.5, n^{-1/3} = 0.5, b = 3.5.
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let h = Histogram::freedman_diaconis(&xs).unwrap();
        assert!((h.bin_width() - 3.5).abs() < 1e-12);
        assert_eq!(h.num_bins(), 2);
    }

    #[test]
    fn identical_samples_single_bin() {
        let h = Histogram::freedman_diaconis(&[5.0; 10]).unwrap();
        assert_eq!(h.num_bins(), 1);
        assert_eq!(h.counts(), &[10.0]);
        assert_eq!(h.total_mass(), 10.0);
    }

    #[test]
    fn zero_iqr_nonzero_range_falls_back() {
        // Mostly one value with outliers: IQR = 0 but range > 0.
        let mut xs = vec![1.0; 20];
        xs.push(100.0);
        let h = Histogram::freedman_diaconis(&xs).unwrap();
        assert!(h.num_bins() >= 2);
        assert!((h.total_mass() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn mass_is_conserved() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 50.0).collect();
        let h = Histogram::freedman_diaconis(&xs).unwrap();
        assert!((h.counts().iter().sum::<f64>() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn max_lands_in_last_bin() {
        let h = Histogram::with_bin_width(&[0.0, 1.0, 2.0], 1.0).unwrap();
        assert_eq!(h.num_bins(), 2);
        assert_eq!(h.counts(), &[1.0, 2.0]);
    }

    #[test]
    fn bin_cap_enforced() {
        // Tiny width over wide range would want millions of bins.
        let h = Histogram::with_bin_width(&[0.0, 1.0e9], 0.001).unwrap();
        assert_eq!(h.num_bins(), MAX_BINS);
        assert!((h.total_mass() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn point_masses_normalized_and_sparse() {
        let h = Histogram::with_bin_width(&[0.0, 0.1, 10.0], 1.0).unwrap();
        let pm = h.point_masses();
        assert_eq!(pm.len(), 2); // middle bins empty and skipped
        let mass: f64 = pm.iter().map(|&(_, w)| w).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_center_positions() {
        let h = Histogram::with_bin_width(&[0.0, 4.0], 2.0).unwrap();
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(1), 3.0);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn invalid_width_panics() {
        let _ = Histogram::with_bin_width(&[1.0], 0.0);
    }
}
