//! Empirical cumulative distribution functions.
//!
//! The paper's Figures 1, 5 and 10 are per-host CDFs; [`Ecdf`] is the
//! container the reproduction harness uses to print those series.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// # Examples
///
/// ```
/// use pw_analysis::Ecdf;
///
/// let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.75);
/// assert_eq!(cdf.eval(100.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (need not be sorted). Samples are
    /// ordered by `f64::total_cmp`, so NaN never panics — it sorts to
    /// the top tail and inflates `len` like any other garbage sample.
    pub fn new(mut samples: Vec<f64>) -> Self {
        crate::order::sort_floats(&mut samples);
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`. Returns `0.0` for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), or `None` for an empty sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(crate::stats::percentile_sorted(&self.sorted, q * 100.0))
    }

    /// The sorted sample values.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// The CDF evaluated at `points`, as `(x, F(x))` pairs — convenient for
    /// printing a plot series.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.eval(x))).collect()
    }

    /// `n` logarithmically spaced evaluation points covering the sample range
    /// `[lo, hi]`, for log-x CDF plots like the paper's Figure 10.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi < lo`, or `n < 2`.
    pub fn log_points(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        assert!(lo > 0.0 && hi >= lo && n >= 2, "invalid log-point range");
        let (l, h) = (lo.ln(), hi.ln());
        (0..n)
            .map(|i| (l + (h - l) * i as f64 / (n - 1) as f64).exp())
            .collect()
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let cdf = Ecdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
    }

    #[test]
    fn step_behavior() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(cdf.eval(0.9), 0.0);
        assert!((cdf.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.eval(3.0), 1.0);
    }

    #[test]
    fn duplicates_counted() {
        let cdf = Ecdf::new(vec![5.0, 5.0, 5.0, 6.0]);
        assert_eq!(cdf.eval(5.0), 0.75);
    }

    #[test]
    fn quantiles() {
        let cdf: Ecdf = (1..=5).map(|i| i as f64).collect();
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(0.5), Some(3.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
    }

    #[test]
    fn series_is_monotone() {
        let cdf = Ecdf::new(vec![1.0, 10.0, 100.0]);
        let pts = Ecdf::log_points(0.5, 200.0, 20);
        let series = cdf.series(&pts);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn log_points_span_range() {
        let pts = Ecdf::log_points(1.0, 1000.0, 4);
        assert!((pts[0] - 1.0).abs() < 1e-9);
        assert!((pts[3] - 1000.0).abs() < 1e-6);
        assert!((pts[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn log_points_rejects_nonpositive() {
        Ecdf::log_points(0.0, 10.0, 5);
    }
}
