//! Quantile embeddings of gap CDFs, with a certified EMD lower bound and
//! deterministic coarse bucketing — the first level of the two-level
//! (sub-quadratic) `θ_hm`.
//!
//! # Why quantiles
//!
//! The 1-D Earth Mover's Distance has a quantile-domain dual:
//! `W₁(F, G) = ∫₀¹ |F⁻¹(u) − G⁻¹(u)| du`. Sampling the inverse CDF at the
//! `Q + 1` boundary points `u = i/Q` therefore captures exactly the shape
//! information EMD compares, and — crucially for the workspace's
//! determinism rules — each sample `F⁻¹(u)` is a pure *lookup* into the
//! [`CdfRepr`] support (`inf {x : F(x) ≥ u}`): no arithmetic is performed,
//! so the embedding is bit-exact regardless of evaluation order, thread
//! count, or platform (D2-clean).
//!
//! # The lower bound
//!
//! On the slice `u ∈ [i/Q, (i+1)/Q]`, monotonicity brackets
//! `F⁻¹(u) ∈ [v_F[i], v_F[i+1]]` and `G⁻¹(u) ∈ [v_G[i], v_G[i+1]]`, so the
//! pointwise gap is at least the *interval gap*
//! `g_i = max(0, v_F[i] − v_G[i+1], v_G[i] − v_F[i+1])` everywhere on the
//! slice, giving `W₁ ≥ (Σ g_i) / Q`. (A naive L1 distance between the
//! embeddings does **not** lower-bound W₁ — midpoint samples can overshoot
//! on slices where the two inverse CDFs cross — which is why the interval
//! form is used.) [`embedding_lower_bound`] computes this sum and then
//! subtracts a rounding guard of `range · 2⁻³⁰` before clamping at zero, so
//! the *floating-point* result provably stays at or below the
//! floating-point [`crate::emd_cdf`] value: the exact-real inequality has slack
//! eaten only by (a) one rounded subtraction per slice plus the `Q`-term
//! summation here (`≲ Q² · 2⁻⁵³ · range`), and (b) the summation error of
//! `emd_cdf` itself (`≲ m · 2⁻⁵³ · range` for `m` support points). The
//! guard dominates both by a wide margin for `Q ≤ 2048` (asserted) and
//! supports up to ~8 M points — far beyond any per-host gap digest — and
//! the property test in `tests/props.rs` hammers the claim bitwise.
//!
//! # Bucketing
//!
//! [`kmeans_partition`] coarse-partitions hosts by their embeddings with a
//! fully deterministic k-means: farthest-point seeding started from the
//! lexicographically smallest embedding, a fixed number of Lloyd rounds,
//! and index-ordered tie-breaks throughout. Bucketing only decides *where*
//! the exact EMD + NN-chain linkage runs (see `bucketed`); it never feeds a
//! float into the detector output, so its quality affects accuracy of the
//! coarse mode, not determinism.

use crate::emd::CdfRepr;
use crate::order::fcmp;

/// Largest supported quantile count; keeps the rounding guard in
/// [`embedding_lower_bound`] rigorous (see module docs).
pub const MAX_QUANTILES: usize = 2048;

/// Embeds a gap CDF as `quantiles + 1` boundary quantiles
/// `v[i] = F⁻¹(i / quantiles)`, with `v[0]` the smallest and `v[quantiles]`
/// the largest support position.
///
/// Each entry is an exact support-position lookup (no arithmetic), so two
/// [`CdfRepr`]s that compare equal embed identically bit for bit. Cost is
/// `O(len + quantiles)` via a single monotone walk.
///
/// # Panics
///
/// Panics if `c` is empty or `quantiles` is outside `1..=MAX_QUANTILES`.
///
/// # Examples
///
/// ```
/// use pw_analysis::{quantile_embedding, CdfRepr};
///
/// let c = CdfRepr::from_point_masses(&[(0.0, 1.0), (10.0, 1.0)]);
/// let v = quantile_embedding(&c, 4);
/// assert_eq!(v, vec![0.0, 0.0, 0.0, 10.0, 10.0]);
/// ```
pub fn quantile_embedding(c: &CdfRepr, quantiles: usize) -> Vec<f64> {
    assert!(!c.is_empty(), "cannot embed an empty distribution");
    assert!(
        (1..=MAX_QUANTILES).contains(&quantiles),
        "quantiles must be in 1..={MAX_QUANTILES}"
    );
    let q = quantiles;
    let xs = &c.xs;
    let cdf = &c.cdf;
    let mut v = Vec::with_capacity(q + 1);
    v.push(xs[0]);
    let mut k = 0usize;
    for i in 1..q {
        // F⁻¹(u) = first support position whose cumulative mass reaches u.
        // `u` is nondecreasing in i, so `k` only moves forward: one walk.
        let u = i as f64 / q as f64;
        while k + 1 < xs.len() && cdf[k] < u {
            k += 1;
        }
        v.push(xs[k]);
    }
    v.push(xs[xs.len() - 1]);
    v
}

/// A certified lower bound on `emd_cdf(a, b)` computed from the two
/// [`quantile_embedding`]s alone, in `O(quantiles)` time.
///
/// Returns the per-slice interval-gap sum divided by `Q`, minus a
/// `range · 2⁻³⁰` rounding guard, clamped at zero (see the module docs for
/// the proof sketch). The guarantee is **bitwise**: for embeddings built
/// from the same `CdfRepr`s at the same `Q`,
/// `embedding_lower_bound(..) <= emd_cdf(..)` holds as `f64` comparison,
/// not merely up to epsilon.
///
/// # Panics
///
/// Panics if the embeddings differ in length or have fewer than 2 entries.
///
/// # Examples
///
/// ```
/// use pw_analysis::{embedding_lower_bound, emd_cdf, quantile_embedding, CdfRepr};
///
/// let a = CdfRepr::from_point_masses(&[(0.0, 1.0)]);
/// let b = CdfRepr::from_point_masses(&[(100.0, 1.0)]);
/// let (ea, eb) = (quantile_embedding(&a, 16), quantile_embedding(&b, 16));
/// let lb = embedding_lower_bound(&ea, &eb);
/// assert!(lb > 90.0);
/// assert!(lb <= emd_cdf(&a, &b));
/// ```
pub fn embedding_lower_bound(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "embeddings must have equal length");
    assert!(a.len() >= 2, "embeddings need at least one quantile slice");
    let q = a.len() - 1;
    let mut sum = 0.0f64;
    for i in 0..q {
        // Interval gap between [a[i], a[i+1]] and [b[i], b[i+1]]: zero when
        // the brackets overlap, else the distance between them. Both
        // subtractions round monotonically, so a computed positive gap can
        // exceed the true gap only by relative epsilon — absorbed by the
        // guard below.
        let gap = (a[i] - b[i + 1]).max(b[i] - a[i + 1]).max(0.0);
        sum += gap;
    }
    let lo = a[0].min(b[0]);
    let hi = a[q].max(b[q]);
    let guard = (hi - lo) * 2.0f64.powi(-30);
    ((sum / q as f64) - guard).max(0.0)
}

/// Lexicographic total-order comparison of two equal-length embeddings.
fn lex_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let c = fcmp(*x, *y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    std::cmp::Ordering::Equal
}

/// Squared L2 distance between two embeddings (bucketing metric only —
/// never reaches detector output).
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Coarse-partitions items by their embeddings into buckets of roughly
/// `target_bucket` members using deterministic k-means.
///
/// - `k = ceil(n / target_bucket)` centers are seeded farthest-point style,
///   starting from the lexicographically smallest embedding; distance ties
///   prefer the lexicographically smaller embedding, then the lower index.
///   Seeding stops early if every remaining point coincides with a center.
/// - `rounds` Lloyd iterations follow (assignment ties go to the lowest
///   center index; an emptied center keeps its previous position).
/// - Any final bucket larger than `2 * target_bucket` is split into
///   consecutive `target_bucket`-sized chunks so downstream per-bucket
///   `O(len²)` work stays bounded even on degenerate embeddings.
///
/// Returns non-empty buckets ordered by their smallest member, members
/// ascending; together they partition `0..n`. The function is a pure
/// function of the embedding *sequence* — same inputs, same partition, on
/// any thread count.
///
/// # Panics
///
/// Panics if `target_bucket == 0` or the embeddings are not all the same
/// length.
pub fn kmeans_partition(
    embeddings: &[Vec<f64>],
    target_bucket: usize,
    rounds: usize,
) -> Vec<Vec<usize>> {
    assert!(target_bucket >= 1, "target_bucket must be at least 1");
    let n = embeddings.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = embeddings[0].len();
    assert!(
        embeddings.iter().all(|e| e.len() == dim),
        "embeddings must all have the same length"
    );
    let k = n.div_ceil(target_bucket);
    if k <= 1 {
        return vec![(0..n).collect()];
    }

    // Farthest-point seeding from the lexicographically smallest embedding.
    let seed0 = (0..n)
        .min_by(|&i, &j| lex_cmp(&embeddings[i], &embeddings[j]))
        .expect("n > 0");
    let mut centroids: Vec<Vec<f64>> = vec![embeddings[seed0].clone()];
    let mut mind: Vec<f64> = (0..n)
        .map(|i| dist2(&embeddings[i], &centroids[0]))
        .collect();
    while centroids.len() < k {
        let mut best = 0usize;
        for i in 1..n {
            if mind[i] > mind[best]
                || (mind[i] == mind[best]
                    && lex_cmp(&embeddings[i], &embeddings[best]) == std::cmp::Ordering::Less)
            {
                best = i;
            }
        }
        if mind[best] == 0.0 {
            break; // every point coincides with a center already
        }
        centroids.push(embeddings[best].clone());
        for i in 0..n {
            let d = dist2(&embeddings[i], centroids.last().expect("just pushed"));
            if d < mind[i] {
                mind[i] = d;
            }
        }
    }
    let k = centroids.len();

    // Assignment + fixed Lloyd rounds; every tie-break is by lowest index.
    let mut assign = vec![0usize; n];
    let assign_all = |centroids: &[Vec<f64>], assign: &mut [usize]| {
        for (i, e) in embeddings.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = dist2(e, &centroids[0]);
            for (c, ctr) in centroids.iter().enumerate().skip(1) {
                let d = dist2(e, ctr);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best;
        }
    };
    assign_all(&centroids, &mut assign);
    for _ in 0..rounds {
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, e) in embeddings.iter().enumerate() {
            let c = assign[i];
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(e) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = std::mem::take(&mut sums[c]);
            } // an emptied center keeps its previous position
        }
        assign_all(&centroids, &mut assign);
    }

    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assign.iter().enumerate() {
        buckets[c].push(i);
    }
    buckets.retain(|b| !b.is_empty());
    // Split degenerate oversize buckets so per-bucket O(len²) stays bounded.
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(buckets.len());
    for b in buckets {
        if b.len() > 2 * target_bucket {
            out.extend(b.chunks(target_bucket).map(<[usize]>::to_vec));
        } else {
            out.push(b);
        }
    }
    out.sort_by_key(|b| b[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::emd_cdf;

    fn cdf_of(samples: &[f64]) -> CdfRepr {
        let masses: Vec<(f64, f64)> = samples.iter().map(|&x| (x, 1.0)).collect();
        CdfRepr::from_point_masses(&masses)
    }

    #[test]
    fn embedding_endpoints_are_min_and_max() {
        let c = cdf_of(&[5.0, 1.0, 9.0, 3.0]);
        let v = quantile_embedding(&c, 8);
        assert_eq!(v.len(), 9);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[8], 9.0);
        for w in v.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn embedding_of_point_mass_is_constant() {
        let c = cdf_of(&[4.25]);
        assert_eq!(quantile_embedding(&c, 4), vec![4.25; 5]);
    }

    #[test]
    fn embedding_is_exact_lookups() {
        // Every embedded value must literally be a support position.
        let c = cdf_of(&[0.1, 0.2, 0.7, 13.5, 1e9]);
        for v in quantile_embedding(&c, 16) {
            assert!([0.1, 0.2, 0.7, 13.5, 1e9].contains(&v));
        }
    }

    #[test]
    fn lower_bound_identical_distributions_is_zero() {
        let c = cdf_of(&[1.0, 2.0, 3.0]);
        let e = quantile_embedding(&c, 16);
        assert_eq!(embedding_lower_bound(&e, &e), 0.0);
    }

    #[test]
    fn lower_bound_separated_point_masses_is_tight() {
        let a = cdf_of(&[0.0]);
        let b = cdf_of(&[100.0]);
        let (ea, eb) = (quantile_embedding(&a, 16), quantile_embedding(&b, 16));
        let lb = embedding_lower_bound(&ea, &eb);
        let exact = emd_cdf(&a, &b);
        assert!(lb <= exact, "{lb} > {exact}");
        assert!(lb > 99.9, "point-mass bound should be nearly exact: {lb}");
    }

    #[test]
    fn lower_bound_never_exceeds_emd_on_structured_sweep() {
        // Deterministic LCG sweep; the bitwise claim is also proptested.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..200 {
            let na = 1 + (next() * 30.0) as usize;
            let nb = 1 + (next() * 30.0) as usize;
            let a = cdf_of(&(0..na).map(|_| next() * 1e4 - 5e3).collect::<Vec<_>>());
            let b = cdf_of(&(0..nb).map(|_| next() * 1e4 - 5e3).collect::<Vec<_>>());
            for q in [2usize, 7, 16, 64] {
                let lb =
                    embedding_lower_bound(&quantile_embedding(&a, q), &quantile_embedding(&b, q));
                let exact = emd_cdf(&a, &b);
                assert!(lb <= exact && lb >= 0.0, "q={q}: lb {lb} vs exact {exact}");
            }
        }
    }

    #[test]
    fn kmeans_partitions_all_indices() {
        let embeds: Vec<Vec<f64>> = (0..57)
            .map(|i| vec![((i * 37) % 11) as f64, ((i * 13) % 7) as f64])
            .collect();
        let buckets = kmeans_partition(&embeds, 8, 2);
        let mut all: Vec<usize> = buckets.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..57).collect::<Vec<_>>());
        for b in &buckets {
            assert!(!b.is_empty());
            assert!(b.len() <= 2 * 8, "oversize bucket survived: {}", b.len());
            assert!(b.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn kmeans_separates_obvious_groups() {
        let mut embeds: Vec<Vec<f64>> = Vec::new();
        for i in 0..20 {
            embeds.push(vec![(i % 5) as f64 * 0.01]);
        }
        for i in 0..20 {
            embeds.push(vec![1e6 + (i % 5) as f64 * 0.01]);
        }
        let buckets = kmeans_partition(&embeds, 20, 2);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (0..20).collect::<Vec<_>>());
        assert_eq!(buckets[1], (20..40).collect::<Vec<_>>());
    }

    #[test]
    fn kmeans_identical_embeddings_collapse_to_one_bucket_split_by_chunks() {
        let embeds: Vec<Vec<f64>> = (0..40).map(|_| vec![1.0, 2.0]).collect();
        let buckets = kmeans_partition(&embeds, 8, 2);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, 40);
        for b in &buckets {
            assert!(b.len() <= 16);
        }
    }

    #[test]
    fn kmeans_single_bucket_when_target_covers_all() {
        let embeds: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        assert_eq!(
            kmeans_partition(&embeds, 100, 2),
            vec![(0..10).collect::<Vec<_>>()]
        );
    }
}
