//! Statistical substrate for the `peerwatch` workspace.
//!
//! This crate implements the numerical machinery the paper's detector relies
//! on (Yen & Reiter, ICDCS 2010, §IV):
//!
//! - order statistics: [`percentile`], [`median`], [`iqr`] (`stats`);
//! - histogram density estimation with the Freedman–Diaconis bin-width rule
//!   ([`Histogram`], `hist`);
//! - the 1-D Earth Mover's Distance between distributions ([`emd_1d`],
//!   [`emd_histograms`], `emd`), plus the precomputed prefix-sum form for
//!   all-pairs workloads ([`CdfRepr`], [`emd_cdf`]);
//! - empirical CDFs for the paper's cumulative-distribution figures
//!   ([`Ecdf`], `cdf`);
//! - agglomerative average-linkage hierarchical clustering with a
//!   top-fraction dendrogram cut ([`Dendrogram`], `cluster`);
//! - quantile embeddings of CDF digests with a certified EMD lower bound
//!   and deterministic k-means bucketing ([`quantile_embedding`],
//!   [`embedding_lower_bound`], [`kmeans_partition`], `embed`), plus the
//!   stitched per-bucket linkage behind the sub-quadratic `θ_hm`
//!   ([`bucketed_average_linkage`], [`double_sweep_diameter`], `bucketed`);
//! - ROC curve containers ([`RocCurve`], `roc`).
//!
//! Everything here is deterministic; no randomness is used.
//!
//! # Examples
//!
//! ```
//! use pw_analysis::{Histogram, emd_histograms};
//!
//! let a = Histogram::freedman_diaconis(&[1.0, 1.1, 0.9, 1.05, 10.0]).unwrap();
//! let b = Histogram::freedman_diaconis(&[1.0, 1.1, 0.9, 1.05, 10.0]).unwrap();
//! assert!(emd_histograms(&a, &b) < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucketed;
pub mod cdf;
pub mod cluster;
pub mod embed;
pub mod emd;
pub mod hist;
pub mod order;
pub mod roc;
pub mod stats;

pub use bucketed::{bucketed_average_linkage, double_sweep_diameter, BucketedLinkage};
pub use cdf::Ecdf;
pub use cluster::{
    average_linkage, Dendrogram, DistanceMatrix, FillTuning, Merge, PAR_CUTOFF, TILE,
};
pub use embed::{embedding_lower_bound, kmeans_partition, quantile_embedding, MAX_QUANTILES};
pub use emd::{emd_1d, emd_cdf, emd_histograms, CdfRepr};
pub use hist::Histogram;
pub use order::{fcmp, sort_floats};
pub use roc::{auc, RocCurve, RocPoint};
pub use stats::{iqr, mean, median, percentile, std_dev, variance};
