//! Earth Mover's Distance between one-dimensional distributions.
//!
//! The paper compares per-host interstitial-time histograms with the Earth
//! Mover's Distance (Rubner et al.), i.e. the minimum cost of transforming
//! one distribution into the other where moving probability mass `w` a
//! distance `d` along the value axis costs `w · d`. In one dimension with
//! `|x − y|` ground distance the optimal transport cost has the closed form
//! `∫ |F(x) − G(x)| dx` over the merged support, which is what [`emd_1d`]
//! computes — exact, `O(n + m)` after sorting, no LP solver needed.

use crate::hist::Histogram;

/// Earth Mover's Distance between two 1-D distributions given as weighted
/// point masses `(position, weight)`.
///
/// Weights are normalized internally, so inputs need not sum to one (they
/// must sum to something positive). The result is in the units of the
/// position axis.
///
/// Returns `0.0` when both inputs are empty.
///
/// # Panics
///
/// Panics if exactly one input is empty, or if any weight is negative or any
/// value non-finite — a distribution must have mass to be comparable.
///
/// # Examples
///
/// ```
/// use pw_analysis::emd_1d;
///
/// // Unit mass at 0 vs unit mass at 3: all mass travels distance 3.
/// let d = emd_1d(&[(0.0, 1.0)], &[(3.0, 1.0)]);
/// assert!((d - 3.0).abs() < 1e-12);
/// ```
pub fn emd_1d(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    assert!(
        !a.is_empty() && !b.is_empty(),
        "cannot compare a distribution with an empty one"
    );
    let wa: f64 = a.iter().map(|&(_, w)| w).sum();
    let wb: f64 = b.iter().map(|&(_, w)| w).sum();
    assert!(
        wa > 0.0 && wb > 0.0,
        "distributions must have positive mass"
    );
    for &(x, w) in a.iter().chain(b.iter()) {
        assert!(
            x.is_finite() && w >= 0.0,
            "positions finite, weights non-negative"
        );
    }

    let mut pa: Vec<(f64, f64)> = a.iter().map(|&(x, w)| (x, w / wa)).collect();
    let mut pb: Vec<(f64, f64)> = b.iter().map(|&(x, w)| (x, w / wb)).collect();
    pa.sort_by(|p, q| crate::order::fcmp(p.0, q.0));
    pb.sort_by(|p, q| crate::order::fcmp(p.0, q.0));

    // Sweep the merged support accumulating |F_a - F_b| * gap.
    let mut i = 0;
    let mut j = 0;
    let mut cdf_a = 0.0f64;
    let mut cdf_b = 0.0f64;
    let mut prev_x: Option<f64> = None;
    let mut total = 0.0;
    while i < pa.len() || j < pb.len() {
        let x = match (pa.get(i), pb.get(j)) {
            (Some(&(xa, _)), Some(&(xb, _))) => xa.min(xb),
            (Some(&(xa, _)), None) => xa,
            (None, Some(&(xb, _))) => xb,
            (None, None) => unreachable!(),
        };
        if let Some(px) = prev_x {
            total += (cdf_a - cdf_b).abs() * (x - px);
        }
        while i < pa.len() && pa[i].0 == x {
            cdf_a += pa[i].1;
            i += 1;
        }
        while j < pb.len() && pb[j].0 == x {
            cdf_b += pb[j].1;
            j += 1;
        }
        prev_x = Some(x);
    }
    total
}

/// Earth Mover's Distance between two [`Histogram`]s, treating each bin as a
/// point mass at its centre (as the paper does when comparing host
/// histograms whose bin widths differ).
///
/// # Panics
///
/// Panics if either histogram has zero mass (cannot happen for histograms
/// built by this crate's constructors, which reject empty samples).
///
/// # Examples
///
/// ```
/// use pw_analysis::{Histogram, emd_histograms};
///
/// let a = Histogram::with_bin_width(&[0.0, 0.0, 0.0], 1.0).unwrap();
/// let b = Histogram::with_bin_width(&[2.0, 2.0, 2.0], 1.0).unwrap();
/// // Unit mass shifted by exactly 2.
/// assert!((emd_histograms(&a, &b) - 2.0).abs() < 1e-12);
/// ```
pub fn emd_histograms(a: &Histogram, b: &Histogram) -> f64 {
    emd_1d(&a.point_masses(), &b.point_masses())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_are_zero() {
        let a = [(1.0, 0.5), (2.0, 0.5)];
        assert_eq!(emd_1d(&a, &a), 0.0);
    }

    #[test]
    fn both_empty_is_zero() {
        assert_eq!(emd_1d(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn one_empty_panics() {
        emd_1d(&[(0.0, 1.0)], &[]);
    }

    #[test]
    fn pure_shift_costs_shift() {
        let a = [(0.0, 0.25), (1.0, 0.75)];
        let b = [(5.0, 0.25), (6.0, 0.75)];
        assert!((emd_1d(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn split_mass_hand_computed() {
        // a: all mass at 0; b: half at -1, half at +1. Each half travels 1.
        let a = [(0.0, 1.0)];
        let b = [(-1.0, 0.5), (1.0, 0.5)];
        assert!((emd_1d(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unnormalized_weights_are_normalized() {
        let a = [(0.0, 10.0)];
        let b = [(3.0, 2.0)];
        assert!((emd_1d(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = [(0.0, 0.2), (4.0, 0.8)];
        let b = [(1.0, 0.6), (2.0, 0.4)];
        assert!((emd_1d(&a, &b) - emd_1d(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_allowed() {
        let a = [(4.0, 0.5), (0.0, 0.5)];
        let b = [(2.0, 1.0)];
        assert!((emd_1d(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_emd_shift_invariance_of_shape() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x + 10.0).collect();
        let a = Histogram::freedman_diaconis(&xs).unwrap();
        let b = Histogram::freedman_diaconis(&ys).unwrap();
        // Same shape, shifted by 10: EMD should be ~10.
        assert!((emd_histograms(&a, &b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = [(0.0, 1.0)];
        let b = [(1.0, 0.3), (2.0, 0.7)];
        let c = [(5.0, 1.0)];
        let ab = emd_1d(&a, &b);
        let bc = emd_1d(&b, &c);
        let ac = emd_1d(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }
}
