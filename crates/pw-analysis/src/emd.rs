//! Earth Mover's Distance between one-dimensional distributions.
//!
//! The paper compares per-host interstitial-time histograms with the Earth
//! Mover's Distance (Rubner et al.), i.e. the minimum cost of transforming
//! one distribution into the other where moving probability mass `w` a
//! distance `d` along the value axis costs `w · d`. In one dimension with
//! `|x − y|` ground distance the optimal transport cost has the closed form
//! `∫ |F(x) − G(x)| dx` over the merged support, which is what [`emd_1d`]
//! computes — exact, `O(n + m)` after sorting, no LP solver needed.
//!
//! For all-pairs workloads (`θ_hm`'s distance matrix), [`CdfRepr`]
//! precomputes the sorted prefix-sum CDF once per distribution so that each
//! pairwise [`emd_cdf`] call is a single allocation-free linear merge —
//! bit-identical to [`emd_1d`] but without the per-pair alloc + two sorts.

use crate::hist::Histogram;

/// Earth Mover's Distance between two 1-D distributions given as weighted
/// point masses `(position, weight)`.
///
/// Weights are normalized internally, so inputs need not sum to one (they
/// must sum to something positive). The result is in the units of the
/// position axis.
///
/// Returns `0.0` when both inputs are empty.
///
/// # Panics
///
/// Panics if exactly one input is empty, or if any weight is negative or any
/// value non-finite — a distribution must have mass to be comparable.
///
/// # Examples
///
/// ```
/// use pw_analysis::emd_1d;
///
/// // Unit mass at 0 vs unit mass at 3: all mass travels distance 3.
/// let d = emd_1d(&[(0.0, 1.0)], &[(3.0, 1.0)]);
/// assert!((d - 3.0).abs() < 1e-12);
/// ```
pub fn emd_1d(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    assert!(
        !a.is_empty() && !b.is_empty(),
        "cannot compare a distribution with an empty one"
    );
    let wa: f64 = a.iter().map(|&(_, w)| w).sum();
    let wb: f64 = b.iter().map(|&(_, w)| w).sum();
    assert!(
        wa > 0.0 && wb > 0.0,
        "distributions must have positive mass"
    );
    for &(x, w) in a.iter().chain(b.iter()) {
        assert!(
            x.is_finite() && w >= 0.0,
            "positions finite, weights non-negative"
        );
    }

    let mut pa: Vec<(f64, f64)> = a.iter().map(|&(x, w)| (x, w / wa)).collect();
    let mut pb: Vec<(f64, f64)> = b.iter().map(|&(x, w)| (x, w / wb)).collect();
    pa.sort_by(|p, q| crate::order::fcmp(p.0, q.0));
    pb.sort_by(|p, q| crate::order::fcmp(p.0, q.0));

    // Sweep the merged support accumulating |F_a - F_b| * gap.
    let mut i = 0;
    let mut j = 0;
    let mut cdf_a = 0.0f64;
    let mut cdf_b = 0.0f64;
    let mut prev_x: Option<f64> = None;
    let mut total = 0.0;
    while i < pa.len() || j < pb.len() {
        let x = match (pa.get(i), pb.get(j)) {
            (Some(&(xa, _)), Some(&(xb, _))) => xa.min(xb),
            (Some(&(xa, _)), None) => xa,
            (None, Some(&(xb, _))) => xb,
            (None, None) => unreachable!(),
        };
        if let Some(px) = prev_x {
            total += (cdf_a - cdf_b).abs() * (x - px);
        }
        while i < pa.len() && pa[i].0 == x {
            cdf_a += pa[i].1;
            i += 1;
        }
        while j < pb.len() && pb[j].0 == x {
            cdf_b += pb[j].1;
            j += 1;
        }
        prev_x = Some(x);
    }
    total
}

/// A distribution pre-digested for repeated EMD evaluation: strictly
/// increasing support positions paired with the normalized CDF value *after*
/// each position.
///
/// [`emd_1d`] pays an allocation, a normalization pass, and a sort for each
/// of its two arguments on *every* call. `θ_hm` compares every candidate
/// pair, so the same histogram is re-sorted `n − 1` times. Building a
/// `CdfRepr` once per host moves all of that out of the pairwise loop:
/// [`emd_cdf`] is then a single allocation-free linear merge over two
/// precomputed prefix-sum CDFs.
///
/// The prefix sums are accumulated in exactly the float-operation order
/// [`emd_1d`] uses internally (normalize each weight by the left-fold total,
/// then left-fold the normalized weights in sorted position order), so
/// `emd_cdf(&CdfRepr::from_point_masses(a), &CdfRepr::from_point_masses(b))`
/// returns the *same bits* as `emd_1d(a, b)`.
///
/// # Examples
///
/// ```
/// use pw_analysis::{emd_1d, emd_cdf, CdfRepr};
///
/// let a = [(0.0, 1.0)];
/// let b = [(3.0, 1.0)];
/// let (ca, cb) = (CdfRepr::from_point_masses(&a), CdfRepr::from_point_masses(&b));
/// assert_eq!(emd_cdf(&ca, &cb).to_bits(), emd_1d(&a, &b).to_bits());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CdfRepr {
    /// Support positions, strictly increasing under `==` (positions that
    /// compare equal — including `-0.0` vs `0.0` — are merged).
    /// `pub(crate)` so the quantile embedding (`embed`) can read the digest
    /// without copying; invariants are still enforced by the constructors.
    pub(crate) xs: Vec<f64>,
    /// `cdf[k]`: total normalized mass at positions `<= xs[k]`.
    pub(crate) cdf: Vec<f64>,
}

impl CdfRepr {
    /// Digests weighted point masses `(position, weight)` into a sorted
    /// prefix-sum CDF. Input need not be sorted or normalized — the same
    /// contract as [`emd_1d`]. An empty input yields an empty distribution
    /// (comparable only with another empty one).
    ///
    /// # Panics
    ///
    /// Panics if any position is non-finite, any weight negative, or the
    /// total mass of a non-empty input is not positive.
    pub fn from_point_masses(masses: &[(f64, f64)]) -> Self {
        if masses.is_empty() {
            return Self {
                xs: Vec::new(),
                cdf: Vec::new(),
            };
        }
        let w_total: f64 = masses.iter().map(|&(_, w)| w).sum();
        assert!(w_total > 0.0, "distributions must have positive mass");
        for &(x, w) in masses {
            assert!(
                x.is_finite() && w >= 0.0,
                "positions finite, weights non-negative"
            );
        }
        let mut pts: Vec<(f64, f64)> = masses.iter().map(|&(x, w)| (x, w / w_total)).collect();
        pts.sort_by(|p, q| crate::order::fcmp(p.0, q.0));
        let mut xs: Vec<f64> = Vec::with_capacity(pts.len());
        let mut cdf: Vec<f64> = Vec::with_capacity(pts.len());
        let mut acc = 0.0f64;
        for (x, w) in pts {
            acc += w;
            match xs.last() {
                Some(&last) if last == x => {
                    let slot = cdf.last_mut().expect("cdf tracks xs");
                    *slot = acc;
                }
                _ => {
                    xs.push(x);
                    cdf.push(acc);
                }
            }
        }
        Self { xs, cdf }
    }

    /// Digests a [`Histogram`]'s point masses (bin centres weighted by
    /// normalized counts) — the per-host precomputation `θ_hm` performs once
    /// before the pairwise distance loop.
    pub fn from_histogram(h: &Histogram) -> Self {
        Self::from_point_masses(&h.point_masses())
    }

    /// Number of distinct support positions.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the distribution has no mass (built from an empty input).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Smallest support position, if any.
    pub fn min_position(&self) -> Option<f64> {
        self.xs.first().copied()
    }

    /// Largest support position, if any.
    pub fn max_position(&self) -> Option<f64> {
        self.xs.last().copied()
    }
}

/// Earth Mover's Distance between two precomputed [`CdfRepr`]s: a single
/// allocation-free linear merge, `O(k_a + k_b)` with no setup cost.
///
/// Bit-identical to [`emd_1d`] on the point masses the reprs were built
/// from (see [`CdfRepr`]); this is the kernel `θ_hm`'s pairwise distance
/// matrix runs on.
///
/// Returns `0.0` when both inputs are empty.
///
/// # Panics
///
/// Panics if exactly one input is empty — a distribution must have mass to
/// be comparable.
pub fn emd_cdf(a: &CdfRepr, b: &CdfRepr) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    assert!(
        !a.is_empty() && !b.is_empty(),
        "cannot compare a distribution with an empty one"
    );
    // The same merged-support sweep as `emd_1d`, reading the precomputed
    // prefix sums instead of accumulating: after absorbing position k the
    // running CDF there equals cdf[k] bit-for-bit. Each side's support is
    // strictly increasing under `==`, so every merged point absorbs at most
    // one entry per side and the first point needs no gap term — the loop
    // carries a plain `prev` instead of an `Option` and splits into a
    // two-pointer phase plus drain phases.
    let (ax, ac) = (&a.xs[..], &a.cdf[..]);
    let (bx, bc) = (&b.xs[..], &b.cdf[..]);
    let (na, nb) = (ax.len(), bx.len());
    let mut cdf_a = 0.0f64;
    let mut cdf_b = 0.0f64;
    let mut total = 0.0;
    let first = ax[0].min(bx[0]);
    let mut i = 0;
    let mut j = 0;
    if ax[0] == first {
        cdf_a = ac[0];
        i = 1;
    }
    if bx[0] == first {
        cdf_b = bc[0];
        j = 1;
    }
    let mut prev = first;
    while i < na && j < nb {
        let (xa, xb) = (ax[i], bx[j]);
        let x = xa.min(xb);
        total += (cdf_a - cdf_b).abs() * (x - prev);
        if xa == x {
            cdf_a = ac[i];
            i += 1;
        }
        if xb == x {
            cdf_b = bc[j];
            j += 1;
        }
        prev = x;
    }
    while i < na {
        let x = ax[i];
        total += (cdf_a - cdf_b).abs() * (x - prev);
        cdf_a = ac[i];
        i += 1;
        prev = x;
    }
    while j < nb {
        let x = bx[j];
        total += (cdf_a - cdf_b).abs() * (x - prev);
        cdf_b = bc[j];
        j += 1;
        prev = x;
    }
    total
}

/// Earth Mover's Distance between two [`Histogram`]s, treating each bin as a
/// point mass at its centre (as the paper does when comparing host
/// histograms whose bin widths differ).
///
/// This is a thin wrapper over [`emd_cdf`] that digests both histograms on
/// every call; hot loops comparing the same histograms repeatedly should
/// build [`CdfRepr`]s once and call [`emd_cdf`] directly.
///
/// # Panics
///
/// Panics if either histogram has zero mass (cannot happen for histograms
/// built by this crate's constructors, which reject empty samples).
///
/// # Examples
///
/// ```
/// use pw_analysis::{Histogram, emd_histograms};
///
/// let a = Histogram::with_bin_width(&[0.0, 0.0, 0.0], 1.0).unwrap();
/// let b = Histogram::with_bin_width(&[2.0, 2.0, 2.0], 1.0).unwrap();
/// // Unit mass shifted by exactly 2.
/// assert!((emd_histograms(&a, &b) - 2.0).abs() < 1e-12);
/// ```
pub fn emd_histograms(a: &Histogram, b: &Histogram) -> f64 {
    emd_cdf(&CdfRepr::from_histogram(a), &CdfRepr::from_histogram(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_are_zero() {
        let a = [(1.0, 0.5), (2.0, 0.5)];
        assert_eq!(emd_1d(&a, &a), 0.0);
    }

    #[test]
    fn both_empty_is_zero() {
        assert_eq!(emd_1d(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn one_empty_panics() {
        emd_1d(&[(0.0, 1.0)], &[]);
    }

    #[test]
    fn pure_shift_costs_shift() {
        let a = [(0.0, 0.25), (1.0, 0.75)];
        let b = [(5.0, 0.25), (6.0, 0.75)];
        assert!((emd_1d(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn split_mass_hand_computed() {
        // a: all mass at 0; b: half at -1, half at +1. Each half travels 1.
        let a = [(0.0, 1.0)];
        let b = [(-1.0, 0.5), (1.0, 0.5)];
        assert!((emd_1d(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unnormalized_weights_are_normalized() {
        let a = [(0.0, 10.0)];
        let b = [(3.0, 2.0)];
        assert!((emd_1d(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = [(0.0, 0.2), (4.0, 0.8)];
        let b = [(1.0, 0.6), (2.0, 0.4)];
        assert!((emd_1d(&a, &b) - emd_1d(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_allowed() {
        let a = [(4.0, 0.5), (0.0, 0.5)];
        let b = [(2.0, 1.0)];
        assert!((emd_1d(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_emd_shift_invariance_of_shape() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x + 10.0).collect();
        let a = Histogram::freedman_diaconis(&xs).unwrap();
        let b = Histogram::freedman_diaconis(&ys).unwrap();
        // Same shape, shifted by 10: EMD should be ~10.
        assert!((emd_histograms(&a, &b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_repr_matches_emd_1d_bitwise() {
        type Masses = Vec<(f64, f64)>;
        let cases: Vec<(Masses, Masses)> = vec![
            (vec![(0.0, 1.0)], vec![(3.0, 1.0)]),
            (
                vec![(4.0, 0.5), (0.0, 0.5)], // unsorted
                vec![(2.0, 1.0)],
            ),
            (
                vec![(1.0, 0.25), (1.0, 0.25), (2.0, 0.5)], // duplicate support
                vec![(-1.0, 0.3), (5.0, 0.7)],
            ),
            (
                vec![(0.0, 10.0), (0.5, 1.0), (9.0, 3.0)], // unnormalized
                vec![(3.0, 2.0), (3.5, 0.01)],
            ),
            (
                vec![(-0.0, 0.5), (0.0, 0.5)], // -0.0 and 0.0 merge
                vec![(1.0, 1.0)],
            ),
        ];
        for (a, b) in cases {
            let (ca, cb) = (
                CdfRepr::from_point_masses(&a),
                CdfRepr::from_point_masses(&b),
            );
            assert_eq!(
                emd_cdf(&ca, &cb).to_bits(),
                emd_1d(&a, &b).to_bits(),
                "a={a:?} b={b:?}"
            );
            assert_eq!(
                emd_cdf(&cb, &ca).to_bits(),
                emd_1d(&b, &a).to_bits(),
                "swapped a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn cdf_repr_from_histogram_matches_point_mass_path() {
        let xs: Vec<f64> = (0..400)
            .map(|i: u64| {
                let x = ((i * 2654435761 + 17) % 10_000) as f64 / 10_000.0;
                10.0 + 5_000.0 * x * x * x
            })
            .collect();
        let ys: Vec<f64> = (0..300).map(|i| 300.0 + (i % 7) as f64 * 0.5).collect();
        let a = Histogram::freedman_diaconis(&xs).unwrap();
        let b = Histogram::freedman_diaconis(&ys).unwrap();
        let (ca, cb) = (CdfRepr::from_histogram(&a), CdfRepr::from_histogram(&b));
        let want = emd_1d(&a.point_masses(), &b.point_masses());
        assert_eq!(emd_cdf(&ca, &cb).to_bits(), want.to_bits());
        assert_eq!(emd_histograms(&a, &b).to_bits(), want.to_bits());
    }

    #[test]
    fn cdf_repr_merges_equal_positions() {
        let c = CdfRepr::from_point_masses(&[(1.0, 0.5), (1.0, 0.25), (2.0, 0.25)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.min_position(), Some(1.0));
        assert_eq!(c.max_position(), Some(2.0));
    }

    #[test]
    fn empty_cdf_reprs_compare_to_zero() {
        let e = CdfRepr::from_point_masses(&[]);
        assert!(e.is_empty());
        assert_eq!(e.min_position(), None);
        assert_eq!(emd_cdf(&e, &e), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn one_empty_cdf_panics() {
        let e = CdfRepr::from_point_masses(&[]);
        let u = CdfRepr::from_point_masses(&[(0.0, 1.0)]);
        emd_cdf(&u, &e);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_mass_cdf_repr_panics() {
        let _ = CdfRepr::from_point_masses(&[(0.0, 0.0)]);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = [(0.0, 1.0)];
        let b = [(1.0, 0.3), (2.0, 0.7)];
        let c = [(5.0, 1.0)];
        let ab = emd_1d(&a, &b);
        let bc = emd_1d(&b, &c);
        let ac = emd_1d(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }
}
