//! Order statistics and moments over `f64` samples.
//!
//! All functions ignore nothing and assume finite inputs; callers are
//! responsible for filtering NaN/inf out of measured data first. Functions
//! that need at least one sample return [`None`] on empty input.

/// Arithmetic mean of `xs`, or `None` if `xs` is empty.
///
/// # Examples
///
/// ```
/// assert_eq!(pw_analysis::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(pw_analysis::mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance of `xs`, or `None` if `xs` is empty.
///
/// # Examples
///
/// ```
/// assert_eq!(pw_analysis::variance(&[1.0, 3.0]), Some(1.0));
/// ```
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation of `xs`, or `None` if `xs` is empty.
///
/// # Examples
///
/// ```
/// assert_eq!(pw_analysis::std_dev(&[1.0, 3.0]), Some(1.0));
/// ```
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// The `p`-th percentile of `xs` with linear interpolation between order
/// statistics (the "linear"/"type 7" definition used by NumPy and R).
///
/// `p` is clamped to `[0, 100]`. Returns `None` if `xs` is empty.
///
/// # Examples
///
/// ```
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(pw_analysis::percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(pw_analysis::percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(pw_analysis::percentile(&xs, 100.0), Some(4.0));
/// ```
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    crate::order::sort_floats(&mut sorted);
    Some(percentile_sorted(&sorted, p))
}

/// Like [`percentile`], but for data already sorted ascending.
///
/// Use this when computing many percentiles over the same sample to avoid
/// re-sorting.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn percentile_sorted(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let frac = rank - lo as f64;
        xs[lo] + (xs[hi] - xs[lo]) * frac
    }
}

/// Median (50th percentile) of `xs`, or `None` if empty.
///
/// # Examples
///
/// ```
/// assert_eq!(pw_analysis::median(&[3.0, 1.0, 2.0]), Some(2.0));
/// ```
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Inter-quartile range (75th − 25th percentile) of `xs`, or `None` if empty.
///
/// This is the "spread" term in the Freedman–Diaconis bin-width rule used by
/// the paper's `θ_hm` test (§IV-C).
///
/// # Examples
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(pw_analysis::iqr(&xs), Some(2.0));
/// ```
pub fn iqr(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    crate::order::sort_floats(&mut sorted);
    Some(percentile_sorted(&sorted, 75.0) - percentile_sorted(&sorted, 25.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(mean(&[5.0]), Some(5.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_and_std() {
        assert_eq!(variance(&[]), None);
        assert_eq!(variance(&[7.0]), Some(0.0));
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 4.0).abs() < 1e-12);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 0.0), Some(42.0));
        assert_eq!(percentile(&[42.0], 50.0), Some(42.0));
        assert_eq!(percentile(&[42.0], 100.0), Some(42.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 25.0), Some(17.5));
        assert_eq!(percentile(&xs, 75.0), Some(32.5));
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -5.0), Some(1.0));
        assert_eq!(percentile(&xs, 150.0), Some(2.0));
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&xs, 50.0), Some(5.0));
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn iqr_matches_hand_computation() {
        // sorted: 1 2 3 4 5; q1 = 2, q3 = 4.
        assert_eq!(iqr(&[5.0, 1.0, 4.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(iqr(&[7.0]), Some(0.0));
        assert_eq!(iqr(&[]), None);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_sorted_panics_on_empty() {
        percentile_sorted(&[], 50.0);
    }
}
