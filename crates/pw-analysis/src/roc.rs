//! ROC (receiver operating characteristic) curve containers.
//!
//! The paper's Figures 6–8 are ROC curves produced by sweeping each test's
//! threshold across the 10/30/50/70/90th percentiles of the relevant host
//! statistic. This module holds the curve representation and AUC; the rate
//! computation itself lives in `pw-detect`, next to the tests.

use serde::{Deserialize, Serialize};

/// One operating point on a ROC curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Human-readable threshold description (e.g. `"p50"`).
    pub label: String,
    /// False-positive rate in `[0, 1]`, relative to the test's input set.
    pub fpr: f64,
    /// True-positive rate in `[0, 1]`, relative to the test's input set.
    pub tpr: f64,
}

/// A ROC curve: a named series of operating points.
///
/// # Examples
///
/// ```
/// use pw_analysis::{RocCurve, RocPoint};
///
/// let mut curve = RocCurve::new("storm");
/// curve.push(RocPoint { label: "p50".into(), fpr: 0.1, tpr: 0.9 });
/// assert_eq!(curve.points().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    name: String,
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Creates an empty curve with a series name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an operating point.
    ///
    /// # Panics
    ///
    /// Panics if the rates are outside `[0, 1]`.
    pub fn push(&mut self, p: RocPoint) {
        assert!(
            (0.0..=1.0).contains(&p.fpr) && (0.0..=1.0).contains(&p.tpr),
            "rates must be within [0, 1]"
        );
        self.points.push(p);
    }

    /// The operating points in insertion order.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Points sorted by ascending FPR (ties by TPR), for plotting or AUC.
    pub fn sorted_points(&self) -> Vec<RocPoint> {
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| crate::order::fcmp(a.fpr, b.fpr).then(crate::order::fcmp(a.tpr, b.tpr)));
        pts
    }
}

/// Trapezoidal area under a ROC curve, with the curve anchored at `(0,0)` and
/// `(1,1)`.
///
/// # Examples
///
/// ```
/// use pw_analysis::{auc, RocCurve, RocPoint};
///
/// let mut c = RocCurve::new("perfect-ish");
/// c.push(RocPoint { label: "t".into(), fpr: 0.0, tpr: 1.0 });
/// assert!((auc(&c) - 1.0).abs() < 1e-12);
/// ```
pub fn auc(curve: &RocCurve) -> f64 {
    let mut pts = curve.sorted_points();
    let mut xs = vec![0.0];
    let mut ys = vec![0.0];
    for p in pts.drain(..) {
        xs.push(p.fpr);
        ys.push(p.tpr);
    }
    xs.push(1.0);
    ys.push(1.0);
    let mut area = 0.0;
    for k in 1..xs.len() {
        area += (xs[k] - xs[k - 1]) * (ys[k] + ys[k - 1]) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(fpr: f64, tpr: f64) -> RocPoint {
        RocPoint {
            label: String::from("t"),
            fpr,
            tpr,
        }
    }

    #[test]
    fn diagonal_curve_has_half_auc() {
        let mut c = RocCurve::new("random");
        c.push(pt(0.5, 0.5));
        assert!((auc(&c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_curve_is_diagonal() {
        let c = RocCurve::new("empty");
        assert!((auc(&c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dominant_curve_has_higher_auc() {
        let mut strong = RocCurve::new("strong");
        strong.push(pt(0.1, 0.9));
        let mut weak = RocCurve::new("weak");
        weak.push(pt(0.4, 0.5));
        assert!(auc(&strong) > auc(&weak));
    }

    #[test]
    fn sorted_points_order() {
        let mut c = RocCurve::new("x");
        c.push(pt(0.9, 1.0));
        c.push(pt(0.1, 0.2));
        let s = c.sorted_points();
        assert!(s[0].fpr < s[1].fpr);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn push_rejects_out_of_range() {
        let mut c = RocCurve::new("bad");
        c.push(pt(1.5, 0.0));
    }
}
