//! Agglomerative hierarchical clustering (average linkage / UPGMA).
//!
//! The paper's `θ_hm` test clusters hosts by the Earth Mover's Distance
//! between their interstitial-time histograms: "Clustering is performed
//! using an agglomerative hierarchical algorithm, where each step merges the
//! two hosts with the closest distributions … The final set of clusters is
//! formed by cutting the top 5% links with the largest weights." (§IV-C)
//!
//! [`average_linkage`] implements UPGMA with the nearest-neighbour-chain
//! algorithm over a condensed Lance–Williams working matrix: `O(n²)` time
//! and only `O(n)` auxiliary space beyond the condensed (`n(n−1)/2`-entry)
//! distance copy — no dense `n×n` working matrix is ever materialized.
//! [`Dendrogram::cut_top_fraction`] implements the link cut. Average
//! linkage is *reducible*, so NN-chain produces the exact UPGMA dendrogram
//! after sorting merges by height.

use serde::{Deserialize, Serialize};

/// Edge length of the square cache blocks [`DistanceMatrix::from_fn_par`]
/// carves the condensed triangle into. A 64×64 tile touches at most 128
/// distinct items, small enough that both sides' per-item inputs stay
/// resident in L1/L2 while the tile's 4096 pairs are evaluated.
pub const TILE: usize = 64;

/// Minimum item count for [`DistanceMatrix::from_fn_par`] to spawn worker
/// threads. Below this the whole fill costs less than creating and joining
/// a thread pool, so the serial path is taken regardless of `threads`.
pub const PAR_CUTOFF: usize = 128;

/// Tuning knobs for the parallel condensed-triangle fill.
///
/// Historically [`TILE`] and [`PAR_CUTOFF`] were hardcoded; promoting them
/// into a value lets callers (the `θ_hm` config surface in `pw-detect`)
/// expose them without forking the fill. The fill result is identical for
/// *any* valid tuning — tiles and cutoffs only decide which worker computes
/// which slot — so tuning is a pure performance surface.
///
/// # Examples
///
/// ```
/// use pw_analysis::FillTuning;
///
/// let t = FillTuning::default();
/// assert_eq!(t.tile, pw_analysis::TILE);
/// assert_eq!(t.par_cutoff, pw_analysis::PAR_CUTOFF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FillTuning {
    /// Edge length of the square cache blocks the condensed triangle is
    /// carved into. Must be at least 1.
    pub tile: usize,
    /// Minimum item count before worker threads are spawned; below it the
    /// serial path runs regardless of the requested thread count.
    pub par_cutoff: usize,
}

impl Default for FillTuning {
    fn default() -> Self {
        Self {
            tile: TILE,
            par_cutoff: PAR_CUTOFF,
        }
    }
}

/// A symmetric pairwise distance matrix over `n` items, stored condensed
/// (upper triangle only).
///
/// # Examples
///
/// ```
/// use pw_analysis::DistanceMatrix;
///
/// let dm = DistanceMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs());
/// assert_eq!(dm.get(0, 2), 2.0);
/// assert_eq!(dm.get(2, 0), 2.0);
/// assert_eq!(dm.get(1, 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>, // condensed upper triangle, row-major
}

impl DistanceMatrix {
    /// Builds the matrix by evaluating `f(i, j)` for every pair `i < j`.
    ///
    /// `f` must be symmetric in spirit; only `i < j` is ever evaluated.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a negative or non-finite distance.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                assert!(
                    d.is_finite() && d >= 0.0,
                    "distances must be finite and non-negative"
                );
                data.push(d);
            }
        }
        Self { n, data }
    }

    /// [`DistanceMatrix::from_fn`] with the condensed upper triangle filled
    /// in parallel across `threads` scoped workers.
    ///
    /// The triangle is carved into [`TILE`]`×`[`TILE`] cache blocks and the
    /// tiles are dealt round-robin to the workers, so each worker touches at
    /// most `2·TILE` distinct items per tile — the per-item inputs (`θ_hm`'s
    /// precomputed CDFs) stay hot in cache instead of streaming the whole
    /// item set past every row. Every slot is `f(i, j)` regardless of which
    /// worker computes it, so the result is identical to the serial
    /// constructor for any thread count and any tiling.
    ///
    /// Below [`PAR_CUTOFF`] items the spawn cost dominates the fill itself
    /// and the serial path is taken; `threads == 0` is clamped to 1.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a negative or non-finite distance.
    pub fn from_fn_par<F>(n: usize, threads: usize, f: F) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        Self::from_fn_par_tuned(n, threads, FillTuning::default(), f)
    }

    /// [`DistanceMatrix::from_fn_par`] with explicit [`FillTuning`] instead
    /// of the [`TILE`]/[`PAR_CUTOFF`] defaults.
    ///
    /// The contents are identical to the serial constructor for any thread
    /// count and any tuning; only wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a negative or non-finite distance, or if
    /// `tuning.tile == 0`.
    pub fn from_fn_par_tuned<F>(n: usize, threads: usize, tuning: FillTuning, f: F) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        assert!(tuning.tile >= 1, "fill tile must be at least 1");
        let tile = tuning.tile;
        let threads = threads.max(1);
        if threads == 1 || n < tuning.par_cutoff {
            return Self::from_fn(n, f);
        }
        let mut data = vec![0.0f64; n.saturating_sub(1) * n / 2];
        // Carve the condensed buffer into per-(row, column-tile) spans and
        // group the spans of each tile×tile block together. Tile (bi, bj),
        // bi <= bj, holds pairs (i, j) with i in row-block bi, j in
        // column-block bj; spans are disjoint sub-slices of `data`, so no
        // two workers ever alias.
        let nb = n.div_ceil(tile);
        let tile_index = |bi: usize, bj: usize| -> usize {
            debug_assert!(bi <= bj && bj < nb);
            bi * nb - bi * (bi.saturating_sub(1)) / 2 + (bj - bi)
        };
        let n_tiles = nb * (nb + 1) / 2;
        let mut tiles: Vec<Vec<(usize, usize, &mut [f64])>> =
            (0..n_tiles).map(|_| Vec::new()).collect();
        let mut rest = data.as_mut_slice();
        for i in 0..n.saturating_sub(1) {
            let bi = i / tile;
            let (mut row, tail) = rest.split_at_mut(n - 1 - i);
            rest = tail;
            let mut j = i + 1;
            while j < n {
                let bj = j / tile;
                let hi = ((bj + 1) * tile).min(n);
                let (span, row_tail) = std::mem::take(&mut row).split_at_mut(hi - j);
                if !span.is_empty() {
                    tiles[tile_index(bi, bj)].push((i, j, span));
                }
                row = row_tail;
                j = hi;
            }
        }
        std::thread::scope(|scope| {
            for chunk in assign_strided(tiles, threads) {
                let f = &f;
                scope.spawn(move || {
                    for tile in chunk {
                        for (i, j0, span) in tile {
                            for (off, slot) in span.iter_mut().enumerate() {
                                let d = f(i, j0 + off);
                                assert!(
                                    d.is_finite() && d >= 0.0,
                                    "distances must be finite and non-negative"
                                );
                                *slot = d;
                            }
                        }
                    }
                });
            }
        });
        Self { n, data }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The condensed upper triangle in row-major order: slot
    /// `i * n - i * (i + 1) / 2 + (j - i - 1)` holds the distance between
    /// items `i < j`.
    pub fn condensed(&self) -> &[f64] {
        &self.data
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between items `i` and `j` (symmetric; zero on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Less => self.data[self.idx(i, j)],
            std::cmp::Ordering::Greater => self.data[self.idx(j, i)],
        }
    }

    /// Maximum pairwise distance among `members` — the cluster *diameter*
    /// used by `θ_hm`'s `τ_hm` filter. Singletons and empty sets have
    /// diameter `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if any member index is out of range.
    pub fn diameter(&self, members: &[usize]) -> f64 {
        let mut d = 0.0f64;
        for (k, &i) in members.iter().enumerate() {
            for &j in &members[k + 1..] {
                d = d.max(self.get(i, j));
            }
        }
        d
    }
}

/// Distributes work items round-robin into `threads` buckets (row `i` goes
/// to bucket `i % threads`), dropping empty buckets.
fn assign_strided<T>(items: Vec<T>, threads: usize) -> Vec<Vec<T>> {
    let mut buckets: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push(item);
    }
    buckets.retain(|b| !b.is_empty());
    buckets
}

/// One merge step in a [`Dendrogram`].
///
/// Cluster ids follow the SciPy convention: leaves are `0..n`, and the
/// `k`-th merge (0-based) creates cluster id `n + k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// Id of the first merged cluster.
    pub left: usize,
    /// Id of the second merged cluster.
    pub right: usize,
    /// Linkage height (average inter-cluster distance) of this merge — the
    /// "weight" of the dendrogram link in the paper's terminology.
    pub height: f64,
    /// Number of leaves in the new cluster.
    pub size: usize,
}

/// The result of hierarchical clustering: `n` leaves and `n − 1` merges in
/// non-decreasing height order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves (items clustered).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge sequence, sorted by non-decreasing height.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram by removing the `fraction` of links with the
    /// largest weights (rounded to the nearest whole number of links), then
    /// returns the resulting clusters as sorted leaf-index lists.
    ///
    /// The paper cuts the top 5 % (`fraction = 0.05`). Because merges are
    /// height-sorted, removing the heaviest `k` links is the same as keeping
    /// only the first `n − 1 − k` merges.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn cut_top_fraction(&self, fraction: f64) -> Vec<Vec<usize>> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let m = self.merges.len();
        let k = ((fraction * m as f64).round() as usize).min(m);
        self.clusters_from_prefix(m - k)
    }

    /// Cuts the dendrogram at an absolute `height`: merges with height
    /// `> height` are discarded.
    pub fn cut_at_height(&self, height: f64) -> Vec<Vec<usize>> {
        let keep = self.merges.partition_point(|mg| mg.height <= height);
        self.clusters_from_prefix(keep)
    }

    fn clusters_from_prefix(&self, n_merges: usize) -> Vec<Vec<usize>> {
        let n = self.n_leaves;
        let mut uf = UnionFind::new(n + n_merges);
        // Map merge-created ids onto union-find slots: id n+k -> slot created
        // by the k-th union. We emulate by unioning leaves of each merge.
        // Track a representative leaf for every cluster id.
        let mut rep: Vec<usize> = (0..n).collect();
        for mg in &self.merges[..n_merges] {
            let ra = rep[mg.left];
            let rb = rep[mg.right];
            uf.union(ra, rb);
            rep.push(uf.find(ra)); // representative of the new cluster
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for leaf in 0..n {
            groups.entry(uf.find(leaf)).or_default().push(leaf);
        }
        groups.into_values().collect()
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        self.parent[ra] = rb;
        rb
    }
}

/// Runs average-linkage (UPGMA) agglomerative clustering over a distance
/// matrix, returning the full [`Dendrogram`].
///
/// Uses the nearest-neighbour-chain algorithm over a condensed
/// Lance–Williams working copy: `O(n²)` time and `O(n)` auxiliary space
/// beyond the condensed copy — no dense `n×n` working matrix. Ties are
/// broken towards the lower index, making results fully deterministic.
///
/// # Examples
///
/// ```
/// use pw_analysis::{average_linkage, DistanceMatrix};
///
/// // Two tight pairs far apart: {0,1} and {2,3}.
/// let pos = [0.0f64, 0.1, 10.0, 10.1];
/// let dm = DistanceMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs());
/// let dendro = average_linkage(&dm);
/// let clusters = dendro.cut_top_fraction(1.0 / 3.0); // cuts the top link
/// assert_eq!(clusters, vec![vec![0, 1], vec![2, 3]]);
/// ```
pub fn average_linkage(dm: &DistanceMatrix) -> Dendrogram {
    let n = dm.len();
    if n == 0 {
        return Dendrogram {
            n_leaves: 0,
            merges: Vec::new(),
        };
    }
    // Condensed working copy of the upper triangle; slot (i, j), i < j, at
    // the same index the input matrix uses. Everything else is O(n).
    let mut d: Vec<f64> = dm.data.clone();
    // Row bases for the condensed layout: cidx(i, j) = rowbase[i] + j - i - 1.
    let rowbase: Vec<usize> = (0..n).map(|i| i * n - i * (i + 1) / 2).collect();
    let mut size = vec![1usize; n];
    // Sorted list of live cluster slots; shrinks as merges retire slots, so
    // scan and update cost track the live count rather than n.
    let mut actives: Vec<usize> = (0..n).collect();
    // Raw merges as (leaf representative of a, leaf rep of b, height).
    let mut raw: Vec<(usize, usize, f64)> = Vec::with_capacity(n - 1);
    let rep: Vec<usize> = (0..n).collect(); // slot -> a leaf it contains
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    while actives.len() > 1 {
        if chain.is_empty() {
            chain.push(actives[0]);
        }
        loop {
            let a = *chain.last().expect("chain non-empty");
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            // Nearest active neighbour of `a`, preferring `prev` on ties so
            // reciprocal pairs terminate the chain. `actives` is ascending,
            // so candidates are visited in the same k order as a 0..n sweep.
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            let base_a = rowbase[a];
            for &k in &actives {
                if k == a {
                    continue;
                }
                let dk = if k < a {
                    d[rowbase[k] + (a - k - 1)]
                } else {
                    d[base_a + (k - a - 1)]
                };
                if dk < best_d || (dk == best_d && Some(k) == prev) {
                    best_d = dk;
                    best = k;
                }
            }
            debug_assert!(best != usize::MAX);
            if Some(best) == prev {
                // Reciprocal nearest neighbours: merge `a` and `best`.
                chain.pop();
                chain.pop();
                let (x, y) = (a.min(best), a.max(best));
                raw.push((rep[x], rep[y], best_d));
                // Lance–Williams update for average linkage into slot x;
                // the condensed layout stores each pair once, so one write
                // covers both orientations.
                let (sx, sy) = (size[x] as f64, size[y] as f64);
                let ssum = sx + sy;
                let (base_x, base_y) = (rowbase[x], rowbase[y]);
                for &k in &actives {
                    if k == x || k == y {
                        continue;
                    }
                    let sxk = if k < x {
                        rowbase[k] + (x - k - 1)
                    } else {
                        base_x + (k - x - 1)
                    };
                    let dyk = if k < y {
                        d[rowbase[k] + (y - k - 1)]
                    } else {
                        d[base_y + (k - y - 1)]
                    };
                    d[sxk] = (sx * d[sxk] + sy * dyk) / ssum;
                }
                size[x] += size[y];
                let gone = actives
                    .binary_search(&y)
                    .expect("merged slot is still active");
                actives.remove(gone);
                break;
            }
            chain.push(best);
        }
    }

    // Sort by height and relabel with a union-find (SciPy's `label` step).
    raw.sort_by(|a, b| crate::order::fcmp(a.2, b.2));
    relabel_sorted_merges(n, raw)
}

/// Relabels already-ordered raw merges `(leaf_a, leaf_b, height)` into the
/// SciPy cluster-id convention (leaves `0..n`, merge `k` creates id `n+k`)
/// via a union-find — the `label` step shared by [`average_linkage`] and the
/// bucketed stitched linkage. The caller is responsible for the merge order
/// (heights must be non-decreasing); no float is touched here, so extracting
/// this step keeps the exact path bit-identical.
pub(crate) fn relabel_sorted_merges(n: usize, raw: Vec<(usize, usize, f64)>) -> Dendrogram {
    let mut uf = UnionFind::new(n);
    let mut cluster_id: Vec<usize> = (0..n).collect(); // root leaf -> cluster id
    let mut cluster_size: Vec<usize> = vec![1; n];
    let mut merges = Vec::with_capacity(raw.len());
    for (k, (ra, rb, h)) in raw.into_iter().enumerate() {
        let root_a = uf.find(ra);
        let root_b = uf.find(rb);
        let (ida, idb) = (cluster_id[root_a], cluster_id[root_b]);
        let sz = cluster_size[root_a] + cluster_size[root_b];
        let (left, right) = (ida.min(idb), ida.max(idb));
        merges.push(Merge {
            left,
            right,
            height: h,
            size: sz,
        });
        let new_root = uf.union(root_a, root_b);
        cluster_id[new_root] = n + k; // SciPy convention: merge k -> id n+k
        cluster_size[new_root] = sz;
    }
    Dendrogram {
        n_leaves: n,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_matrix(pos: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn distance_matrix_symmetry_and_diagonal() {
        let dm = line_matrix(&[0.0, 1.0, 3.0]);
        assert_eq!(dm.get(0, 1), 1.0);
        assert_eq!(dm.get(1, 0), 1.0);
        assert_eq!(dm.get(2, 2), 0.0);
        assert_eq!(dm.len(), 3);
    }

    #[test]
    fn diameter_of_sets() {
        let dm = line_matrix(&[0.0, 2.0, 5.0]);
        assert_eq!(dm.diameter(&[]), 0.0);
        assert_eq!(dm.diameter(&[1]), 0.0);
        assert_eq!(dm.diameter(&[0, 1]), 2.0);
        assert_eq!(dm.diameter(&[0, 1, 2]), 5.0);
    }

    #[test]
    fn empty_and_singleton_dendrograms() {
        let dm = DistanceMatrix::from_fn(0, |_, _| 0.0);
        let dd = average_linkage(&dm);
        assert_eq!(dd.n_leaves(), 0);
        assert!(dd.cut_top_fraction(0.05).is_empty());

        let dm1 = DistanceMatrix::from_fn(1, |_, _| 0.0);
        let dd1 = average_linkage(&dm1);
        assert_eq!(dd1.cut_top_fraction(0.05), vec![vec![0]]);
    }

    #[test]
    fn upgma_hand_example() {
        // Classic UPGMA example: points on a line at 0, 1, 5.
        // First merge {0,1} at height 1; then {0,1}+{2} at avg(5,4) = 4.5.
        let dm = line_matrix(&[0.0, 1.0, 5.0]);
        let dd = average_linkage(&dm);
        assert_eq!(dd.merges().len(), 2);
        assert_eq!(dd.merges()[0].height, 1.0);
        assert_eq!(dd.merges()[0].size, 2);
        assert!((dd.merges()[1].height - 4.5).abs() < 1e-12);
        assert_eq!(dd.merges()[1].size, 3);
    }

    #[test]
    fn merge_heights_nondecreasing() {
        let pos: Vec<f64> = (0..40)
            .map(|i| ((i * 2654435761u64 as usize) % 997) as f64)
            .collect();
        let dm = line_matrix(&pos);
        let dd = average_linkage(&dm);
        for w in dd.merges().windows(2) {
            assert!(w[1].height >= w[0].height - 1e-12);
        }
        assert_eq!(dd.merges().len(), 39);
    }

    #[test]
    fn cut_top_fraction_separates_groups() {
        let pos = [0.0, 0.2, 0.4, 100.0, 100.3, 100.5, 200.0];
        let dm = line_matrix(&pos);
        let dd = average_linkage(&dm);
        // Cutting the top 2 of 6 links should separate the three groups.
        let clusters = dd.cut_top_fraction(2.0 / 6.0);
        assert_eq!(clusters.len(), 3);
        assert!(clusters.contains(&vec![0, 1, 2]));
        assert!(clusters.contains(&vec![3, 4, 5]));
        assert!(clusters.contains(&vec![6]));
    }

    #[test]
    fn cut_zero_fraction_is_one_cluster() {
        let dm = line_matrix(&[0.0, 1.0, 2.0, 3.0]);
        let dd = average_linkage(&dm);
        let clusters = dd.cut_top_fraction(0.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_full_fraction_is_all_singletons() {
        let dm = line_matrix(&[0.0, 1.0, 2.0]);
        let dd = average_linkage(&dm);
        let clusters = dd.cut_top_fraction(1.0);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn cut_is_a_partition() {
        let pos: Vec<f64> = (0..25).map(|i| ((i * 7919) % 503) as f64).collect();
        let dm = line_matrix(&pos);
        let dd = average_linkage(&dm);
        for f in [0.05, 0.2, 0.5] {
            let clusters = dd.cut_top_fraction(f);
            let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..25).collect::<Vec<_>>());
        }
    }

    #[test]
    fn cut_at_height_matches_structure() {
        let dm = line_matrix(&[0.0, 1.0, 5.0]);
        let dd = average_linkage(&dm);
        assert_eq!(dd.cut_at_height(0.5).len(), 3);
        assert_eq!(dd.cut_at_height(1.0).len(), 2);
        assert_eq!(dd.cut_at_height(10.0).len(), 1);
    }

    /// Naive O(n^3) UPGMA as an oracle for the NN-chain implementation.
    fn naive_upgma(dm: &DistanceMatrix) -> Vec<f64> {
        let n = dm.len();
        let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let mut heights = Vec::new();
        while clusters.len() > 1 {
            let mut best = (0, 1, f64::INFINITY);
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    let mut s = 0.0;
                    for &a in &clusters[i] {
                        for &b in &clusters[j] {
                            s += dm.get(a, b);
                        }
                    }
                    let avg = s / (clusters[i].len() * clusters[j].len()) as f64;
                    if avg < best.2 {
                        best = (i, j, avg);
                    }
                }
            }
            heights.push(best.2);
            let merged = clusters.remove(best.1);
            clusters[best.0].extend(merged);
        }
        heights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        heights
    }

    #[test]
    fn from_fn_par_matches_serial() {
        let f = |i: usize, j: usize| ((i * 31 + j * 7) % 97) as f64 / 3.0;
        for n in [0usize, 1, 2, 3, 7, 16, 33] {
            let serial = DistanceMatrix::from_fn(n, f);
            for threads in [1usize, 2, 3, 8, 64] {
                let par = DistanceMatrix::from_fn_par(n, threads, f);
                assert_eq!(serial, par, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn from_fn_par_matches_serial_at_and_around_cutoff() {
        // Pins the serial-cutoff boundary: just below PAR_CUTOFF the
        // parallel constructor must silently take the serial path, at and
        // above it the tiled fill must produce identical contents for any
        // thread count.
        let f = |i: usize, j: usize| ((i * 13 + j * 101) % 251) as f64 / 7.0;
        for n in [
            PAR_CUTOFF - 1,
            PAR_CUTOFF,
            PAR_CUTOFF + 1,
            PAR_CUTOFF + TILE + 3,
        ] {
            let serial = DistanceMatrix::from_fn(n, f);
            for threads in [1usize, 2, 3, 4, 8, 64] {
                let par = DistanceMatrix::from_fn_par(n, threads, f);
                assert_eq!(serial, par, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn condensed_linkage_handles_4096_leaves() {
        // The θ_hm scaling wall: a dense n×n working matrix at n = 4096
        // would be 128 MiB and was the old implementation's first
        // allocation; the condensed NN-chain needs only the n(n−1)/2 copy
        // plus O(n) auxiliary arrays, and finishes in O(n²) time.
        let n = 4096;
        let dm = DistanceMatrix::from_fn(n, |i, j| {
            ((i * 31 + j * 17) % 1021) as f64 + (j - i) as f64 / 4096.0
        });
        let dd = average_linkage(&dm);
        assert_eq!(dd.merges().len(), n - 1);
        for w in dd.merges().windows(2) {
            assert!(w[1].height >= w[0].height - 1e-9);
        }
        // Every leaf lands in exactly one cluster after a cut.
        let clusters = dd.cut_top_fraction(0.05);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn nn_chain_matches_naive_oracle() {
        // Deterministic pseudo-random distance matrices via an LCG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for n in [2usize, 3, 5, 8, 13] {
            let pts: Vec<(f64, f64)> = (0..n).map(|_| (next() * 100.0, next() * 100.0)).collect();
            let dm = DistanceMatrix::from_fn(n, |i, j| {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                (dx * dx + dy * dy).sqrt()
            });
            let dd = average_linkage(&dm);
            let got: Vec<f64> = dd.merges().iter().map(|m| m.height).collect();
            let want = naive_upgma(&dm);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "n={n}: {got:?} vs {want:?}");
            }
        }
    }
}
