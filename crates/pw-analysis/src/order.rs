//! Total-order float comparison helpers.
//!
//! Detection math sorts and ranks `f64` everywhere — percentiles, EMD
//! supports, dendrogram heights, ROC sweeps. `partial_cmp().unwrap()`
//! panics the moment a NaN sneaks in, *mid-sort*, far from whatever
//! produced it; `f64::total_cmp` is a total order (IEEE 754
//! `totalOrder`) that costs the same and never panics. These helpers are
//! the one spelling the `pw-lint` D4 rule sanctions.
//!
//! For finite, same-sign-zero data `total_cmp` agrees exactly with
//! `partial_cmp`; the differences are that `-0.0 < 0.0` and NaN sorts to
//! the ends (negative NaN first, positive NaN last) instead of
//! panicking. Garbage stays garbage, but deterministically so.

use std::cmp::Ordering;

/// Total-order comparison of two floats; the drop-in replacement for
/// `a.partial_cmp(&b).unwrap()` in comparator closures.
#[inline]
#[must_use]
pub fn fcmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Sorts a float slice ascending in the total order.
#[inline]
pub fn sort_floats(xs: &mut [f64]) {
    xs.sort_unstable_by(f64::total_cmp);
}

/// `true` if the slice is ascending in the total order (ties allowed).
#[must_use]
pub fn is_sorted_total(xs: &[f64]) -> bool {
    xs.windows(2).all(|w| fcmp(w[0], w[1]) != Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcmp_matches_partial_cmp_on_finite() {
        let cases = [(1.0, 2.0), (2.0, 1.0), (3.5, 3.5), (-1.0, 1.0)];
        for (a, b) in cases {
            assert_eq!(fcmp(a, b), a.partial_cmp(&b).unwrap());
        }
    }

    #[test]
    fn sort_floats_handles_nan_without_panicking() {
        let mut xs = vec![2.0, f64::NAN, 1.0, f64::NEG_INFINITY];
        sort_floats(&mut xs);
        assert_eq!(xs[0], f64::NEG_INFINITY);
        assert_eq!(xs[1], 1.0);
        assert_eq!(xs[2], 2.0);
        assert!(xs[3].is_nan());
        assert!(is_sorted_total(&xs));
    }

    #[test]
    fn sort_is_deterministic_across_shuffles() {
        let a = vec![0.3, 0.1, 0.2];
        let b = vec![0.2, 0.3, 0.1];
        let (mut a, mut b) = (a, b);
        sort_floats(&mut a);
        sort_floats(&mut b);
        assert_eq!(a, b);
    }
}
