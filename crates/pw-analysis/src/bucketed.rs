//! Stitched per-bucket average linkage — the second level of the two-level
//! (sub-quadratic) `θ_hm`.
//!
//! Given a coarse partition of the items (see [`crate::embed`]), the exact
//! alloc-free EMD fill and `O(len²)` NN-chain [`average_linkage`] run only
//! *within* each bucket, and the bucket dendrograms are then stitched into
//! one [`Dendrogram`] by running UPGMA over the bucket **medoids** (the
//! member minimizing its within-bucket distance row-sum). Cross-bucket
//! merge heights are clamped to be at least the tallest merge beneath them,
//! so the final merge list is non-decreasing in height and remains fully
//! compatible with [`Dendrogram::cut_top_fraction`] / `cut_at_height` — the
//! detector's cut logic is unchanged.
//!
//! Cost: `Σ_b len_b²` distance evaluations plus `k²` medoid-level ones,
//! versus `n²` for the exact path — for `n` items in `k ≈ n / target`
//! buckets this is an `≈ k×` reduction in both fill and linkage work.
//!
//! Everything here is deterministic for a fixed input partition: per-bucket
//! fills are thread-invariant by construction, medoid selection and every
//! tie-break are index-ordered, and the top-level linkage is serial over at
//! most `k` items.

use crate::cluster::{
    average_linkage, relabel_sorted_merges, Dendrogram, DistanceMatrix, FillTuning,
};
use crate::order::fcmp;
use std::time::{Duration, Instant};

/// Result of [`bucketed_average_linkage`]: the stitched dendrogram plus the
/// per-stage wall-clock split the `θ_hm` profile surfaces.
#[derive(Debug, Clone)]
pub struct BucketedLinkage {
    /// Stitched dendrogram over all `n` items (SciPy id convention,
    /// heights non-decreasing).
    pub dendrogram: Dendrogram,
    /// Global index of each bucket's medoid, in bucket order.
    pub medoids: Vec<usize>,
    /// Time spent filling distance matrices (per-bucket + medoid-level).
    pub distance_fill: Duration,
    /// Time spent in NN-chain linkage + stitching.
    pub linkage: Duration,
}

/// Runs average linkage within each bucket and stitches the bucket
/// dendrograms via medoid-level UPGMA into a single [`Dendrogram`] over
/// `0..n`.
///
/// `dist(i, j)` is the exact pairwise distance (only evaluated within
/// buckets and between medoids); `threads`/`tuning` control the per-bucket
/// condensed fills exactly as in [`DistanceMatrix::from_fn_par_tuned`].
///
/// # Panics
///
/// Panics if `buckets` is not a partition of `0..n` into non-empty parts,
/// or if `dist` returns a negative or non-finite distance.
pub fn bucketed_average_linkage<D>(
    n: usize,
    buckets: &[Vec<usize>],
    threads: usize,
    tuning: FillTuning,
    dist: D,
) -> BucketedLinkage
where
    D: Fn(usize, usize) -> f64 + Sync,
{
    // Partition check: every index 0..n exactly once, no empty buckets.
    let mut seen = vec![false; n];
    for b in buckets {
        assert!(!b.is_empty(), "buckets must be non-empty");
        for &i in b {
            assert!(i < n && !seen[i], "buckets must partition 0..n");
            seen[i] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "buckets must cover 0..n");

    let mut fill_time = Duration::ZERO;
    let mut link_time = Duration::ZERO;
    // Raw merge triples (global leaf, global leaf, height) with a sort tier:
    // within-bucket merges (tier 0) win height ties against cross-bucket
    // ones (tier 1) so subtrees complete before the stitch references them.
    let mut internal: Vec<(usize, usize, f64)> = Vec::with_capacity(n.saturating_sub(1));
    let mut medoids: Vec<usize> = Vec::with_capacity(buckets.len());
    let mut floors: Vec<f64> = Vec::with_capacity(buckets.len()); // tallest internal merge
    for b in buckets {
        let len = b.len();
        if len == 1 {
            medoids.push(b[0]);
            floors.push(0.0);
            continue;
        }
        let t0 = Instant::now();
        let dm = DistanceMatrix::from_fn_par_tuned(len, threads, tuning, |i, j| dist(b[i], b[j]));
        fill_time += t0.elapsed();
        let t1 = Instant::now();
        let dendro = average_linkage(&dm);
        // Medoid: smallest within-bucket row-sum, ties to the lowest index.
        let mut best = 0usize;
        let mut best_sum = f64::INFINITY;
        for i in 0..len {
            let mut s = 0.0f64;
            for j in 0..len {
                s += dm.get(i, j);
            }
            if fcmp(s, best_sum) == std::cmp::Ordering::Less {
                best_sum = s;
                best = i;
            }
        }
        medoids.push(b[best]);
        // Re-express the bucket's merges as leaf-level triples in global
        // numbering: a cluster id's representative leaf is its left child's,
        // recursively (leaves represent themselves).
        let mut rep: Vec<usize> = (0..len).collect();
        for mg in dendro.merges() {
            internal.push((b[rep[mg.left]], b[rep[mg.right]], mg.height));
            rep.push(rep[mg.left]);
        }
        floors.push(dendro.merges().last().map_or(0.0, |m| m.height));
        link_time += t1.elapsed();
    }

    let k = buckets.len();
    let mut cross: Vec<(usize, usize, f64)> = Vec::with_capacity(k.saturating_sub(1));
    if k > 1 {
        let t0 = Instant::now();
        let dm_top = DistanceMatrix::from_fn_par_tuned(k, threads, tuning, |i, j| {
            dist(medoids[i], medoids[j])
        });
        fill_time += t0.elapsed();
        let t1 = Instant::now();
        let top = average_linkage(&dm_top);
        // Clamp cross-bucket heights so every merge sits at least as high as
        // the tallest merge beneath it; track a representative bucket per
        // top-level cluster id to name the stitch by its medoid leaf.
        let mut rep: Vec<usize> = (0..k).collect(); // top id -> bucket index
        let mut floor: Vec<f64> = floors.clone(); // top id -> tallest below
        for mg in top.merges() {
            let h = mg.height.max(floor[mg.left]).max(floor[mg.right]);
            cross.push((medoids[rep[mg.left]], medoids[rep[mg.right]], h));
            rep.push(rep[mg.left]);
            floor.push(h);
        }
        link_time += t1.elapsed();
    }

    let t2 = Instant::now();
    // Merge the two streams into one height-sorted list. Within a tier the
    // original emission order is preserved on ties (children before
    // parents); across tiers, internal merges come first at equal height.
    let mut tagged: Vec<(usize, usize, f64, u8, usize)> = internal
        .into_iter()
        .enumerate()
        .map(|(seq, (a, b, h))| (a, b, h, 0u8, seq))
        .chain(
            cross
                .into_iter()
                .enumerate()
                .map(|(seq, (a, b, h))| (a, b, h, 1u8, seq)),
        )
        .collect();
    tagged.sort_by(|x, y| fcmp(x.2, y.2).then(x.3.cmp(&y.3)).then(x.4.cmp(&y.4)));
    let raw: Vec<(usize, usize, f64)> = tagged
        .into_iter()
        .map(|(a, b, h, _, _)| (a, b, h))
        .collect();
    let dendrogram = relabel_sorted_merges(n, raw);
    link_time += t2.elapsed();

    BucketedLinkage {
        dendrogram,
        medoids,
        distance_fill: fill_time,
        linkage: link_time,
    }
}

/// Double-sweep 2-approximation of a cluster diameter: the farthest member
/// from an anchor, then the farthest member from *that* — two `O(len)`
/// sweeps instead of the `O(len²)` exact scan, with the classic guarantee
/// `exact/2 ≤ estimate ≤ exact`. Used by the bucketed `θ_hm` where no
/// global distance matrix exists to call [`DistanceMatrix::diameter`] on.
///
/// Deterministic: the anchor is the first member and ties keep the earliest
/// candidate. Singletons and empty sets have diameter `0.0`.
pub fn double_sweep_diameter<D>(members: &[usize], dist: D) -> f64
where
    D: Fn(usize, usize) -> f64,
{
    if members.len() < 2 {
        return 0.0;
    }
    let anchor = members[0];
    let mut far = anchor;
    let mut dmax = 0.0f64;
    for &m in &members[1..] {
        let d = dist(anchor, m);
        if d > dmax {
            dmax = d;
            far = m;
        }
    }
    let mut best = dmax;
    for &m in members {
        if m == far {
            continue;
        }
        let d = dist(far, m);
        if d > best {
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dist(pos: &'_ [f64]) -> impl Fn(usize, usize) -> f64 + Sync + '_ {
        move |i, j| (pos[i] - pos[j]).abs()
    }

    #[test]
    fn single_bucket_matches_exact_linkage() {
        let pos: Vec<f64> = (0..20).map(|i| ((i * 7919) % 503) as f64).collect();
        let buckets = vec![(0..20).collect::<Vec<_>>()];
        let got = bucketed_average_linkage(20, &buckets, 1, FillTuning::default(), line_dist(&pos));
        let dm = DistanceMatrix::from_fn(20, line_dist(&pos));
        let want = average_linkage(&dm);
        assert_eq!(got.dendrogram, want);
    }

    #[test]
    fn stitched_dendrogram_is_well_formed() {
        let pos: Vec<f64> = (0..30)
            .map(|i| ((i * 2654435761usize) % 997) as f64)
            .collect();
        let buckets: Vec<Vec<usize>> = vec![
            (0..7).collect(),
            (7..19).collect(),
            (19..29).collect(),
            vec![29],
        ];
        let got = bucketed_average_linkage(30, &buckets, 2, FillTuning::default(), line_dist(&pos));
        let d = &got.dendrogram;
        assert_eq!(d.n_leaves(), 30);
        assert_eq!(d.merges().len(), 29);
        for w in d.merges().windows(2) {
            assert!(w[1].height >= w[0].height, "heights must be sorted");
        }
        assert_eq!(d.merges().last().unwrap().size, 30);
        for f in [0.0, 0.05, 0.3, 1.0] {
            let clusters = d.cut_top_fraction(f);
            let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..30).collect::<Vec<_>>());
        }
        assert_eq!(got.medoids.len(), 4);
        assert_eq!(got.medoids[3], 29);
    }

    #[test]
    fn well_separated_groups_survive_the_stitch() {
        // Three tight groups; buckets deliberately split one group in half —
        // the stitch must still reunite it below the cross-group links.
        let mut pos = Vec::new();
        pos.extend((0..8).map(|i| i as f64 * 0.01)); // group A: 0..8
        pos.extend((0..8).map(|i| 1000.0 + i as f64 * 0.01)); // group B: 8..16
        pos.extend((0..8).map(|i| 2000.0 + i as f64 * 0.01)); // group C: 16..24
        let buckets: Vec<Vec<usize>> = vec![
            (0..4).collect(),
            (4..8).collect(),
            (8..16).collect(),
            (16..24).collect(),
        ];
        let got = bucketed_average_linkage(24, &buckets, 1, FillTuning::default(), line_dist(&pos));
        // Cutting the top 2 links severs the two ~1000-height stitches.
        let clusters = got.dendrogram.cut_top_fraction(2.0 / 23.0);
        assert_eq!(clusters.len(), 3);
        assert!(clusters.contains(&(0..8).collect::<Vec<_>>()));
        assert!(clusters.contains(&(8..16).collect::<Vec<_>>()));
        assert!(clusters.contains(&(16..24).collect::<Vec<_>>()));
    }

    #[test]
    fn thread_count_does_not_change_the_stitch() {
        let pos: Vec<f64> = (0..200)
            .map(|i| ((i * 31) % 157) as f64 + i as f64 / 500.0)
            .collect();
        let buckets: Vec<Vec<usize>> = (0..4).map(|c| (c * 50..(c + 1) * 50).collect()).collect();
        let base =
            bucketed_average_linkage(200, &buckets, 1, FillTuning::default(), line_dist(&pos));
        for threads in [2usize, 4, 8] {
            let got = bucketed_average_linkage(
                200,
                &buckets,
                threads,
                FillTuning::default(),
                line_dist(&pos),
            );
            assert_eq!(got.dendrogram, base.dendrogram, "threads={threads}");
            assert_eq!(got.medoids, base.medoids, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn rejects_non_partition() {
        let buckets = vec![vec![0usize, 1], vec![1, 2]];
        bucketed_average_linkage(3, &buckets, 1, FillTuning::default(), |_, _| 1.0);
    }

    #[test]
    fn double_sweep_bounds_exact_diameter() {
        let pos: Vec<f64> = (0..40).map(|i| ((i * 7919) % 211) as f64).collect();
        let members: Vec<usize> = (0..40).collect();
        let est = double_sweep_diameter(&members, line_dist(&pos));
        let dm = DistanceMatrix::from_fn(40, line_dist(&pos));
        let exact = dm.diameter(&members);
        assert!(est <= exact);
        assert!(est >= exact / 2.0);
        // On a line the double sweep is exact: the farthest point from any
        // anchor is an extreme, and the sweep from an extreme finds the other.
        assert_eq!(est, exact);
    }

    #[test]
    fn double_sweep_trivial_sets() {
        assert_eq!(double_sweep_diameter(&[], |_, _| 1.0), 0.0);
        assert_eq!(double_sweep_diameter(&[3], |_, _| 1.0), 0.0);
        assert_eq!(double_sweep_diameter(&[1, 5], |_, _| 7.5), 7.5);
    }
}
