//! Interactive remote-shell sessions.

use rand::{Rng, RngCore};

use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::PacketSink;
use pw_netsim::sampling::LogNormal;
use pw_netsim::{DiurnalProfile, SimDuration};

use crate::model::{ephemeral_port, HostContext, TrafficModel};

/// A user running SSH sessions to a few fixed servers: long-lived,
/// keystroke-paced, modest bytes in both directions.
#[derive(Debug, Clone)]
pub struct SshSessions {
    /// Expected sessions per day.
    pub sessions_per_day: f64,
    /// Number of servers the user logs into.
    pub server_pool: usize,
}

impl Default for SshSessions {
    fn default() -> Self {
        Self {
            sessions_per_day: 4.0,
            server_pool: 5,
        }
    }
}

impl TrafficModel for SshSessions {
    fn name(&self) -> &'static str {
        "ssh"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let length = LogNormal::from_median_p90(600.0, 5400.0);
        let hours = (ctx.end - ctx.start).as_secs_f64() / 3600.0;
        let arrivals = DiurnalProfile::campus_workday().sample_arrivals(
            rng,
            self.sessions_per_day / hours.max(1.0) * 2.0,
            ctx.start,
            ctx.end,
        );
        for t in arrivals {
            let server = ctx
                .space
                .external("ssh", rng.gen_range(0..self.server_pool as u64));
            let secs = length.sample(rng).clamp(20.0, 6.0 * 3600.0);
            let up = (secs * rng.gen_range(20.0..120.0)) as u64;
            let down = (secs * rng.gen_range(100.0..900.0)) as u64;
            emit_connection(
                sink,
                &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), server, 22)
                    .outcome(ConnOutcome::Established {
                        bytes_up: up,
                        bytes_down: down,
                    })
                    .duration(SimDuration::from_secs_f64(secs))
                    .payload(b"SSH-2.0-OpenSSH_4.7\r\n"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::ArgusAggregator;
    use pw_netsim::{AddressSpace, SimTime};

    #[test]
    fn ssh_day_has_long_flows_to_few_servers() {
        let mut space = AddressSpace::campus();
        let ip = space.alloc_internal();
        let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(24));
        let mut rng = pw_netsim::rng::derive(5, "ssh-test");
        let mut argus = ArgusAggregator::default();
        SshSessions::default().generate(&ctx, &mut rng, &mut argus);
        let flows = argus.finish(SimTime::from_hours(31));
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.dport == 22 && !f.is_failed()));
        assert!(flows
            .iter()
            .any(|f| f.duration() > SimDuration::from_mins(5)));
        let dests: std::collections::HashSet<_> = flows.iter().map(|f| f.dst).collect();
        assert!(dests.len() <= 5);
    }
}
