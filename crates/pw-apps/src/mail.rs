//! Mail-client traffic: mailbox polls plus occasional sends.

use rand::{Rng, RngCore};

use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::PacketSink;
use pw_netsim::sampling::LogNormal;
use pw_netsim::{SimDuration, SimTime};

use crate::model::{ephemeral_port, HostContext, TrafficModel};

/// A desktop mail client talking to one fixed provider — low churn, small
/// flows, making mail hosts useful near-miss material for the volume and
/// churn tests.
///
/// Modern-for-2007 clients mostly hold a *persistent* IMAP connection
/// (IDLE), reconnecting occasionally; older setups poll. Pollers use
/// intervals of 15 minutes and up — the sub-15-minute band belongs to
/// nothing benign on this campus, which is exactly the band bot keepalives
/// occupy.
#[derive(Debug, Clone)]
pub struct EmailClient {
    /// Whether the client holds persistent IMAP connections instead of
    /// polling.
    pub persistent: bool,
    /// Seconds between mailbox polls (polling clients only).
    pub poll_interval_s: f64,
    /// Expected messages sent per day.
    pub sends_per_day: f64,
}

impl Default for EmailClient {
    fn default() -> Self {
        Self {
            persistent: false,
            poll_interval_s: 1200.0,
            sends_per_day: 6.0,
        }
    }
}

impl TrafficModel for EmailClient {
    fn name(&self) -> &'static str {
        "mail"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let provider = ctx.space.external("mail", rng.gen_range(0..6));
        let body = LogNormal::from_median_p90(9_000.0, 250_000.0);
        if self.persistent {
            // A held IMAP IDLE connection, re-established every hour or two
            // (server timeouts, network blips).
            let mut t = ctx.start + SimDuration::from_secs_f64(rng.gen_range(0.0..600.0));
            while t < ctx.end {
                let held = rng.gen_range(2400.0..7200.0);
                let held_end = (t + SimDuration::from_secs_f64(held)).min(ctx.end);
                let secs = (held_end - t).as_secs_f64().max(30.0);
                let fetched = (secs / 60.0) as u64 * 300 + body.sample(rng) as u64 / 4;
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), provider, 993)
                        .outcome(ConnOutcome::Established {
                            bytes_up: (secs * 8.0) as u64,
                            bytes_down: fetched,
                        })
                        .duration(SimDuration::from_secs_f64(secs))
                        .payload(b"\x16\x03\x01tls-imap"),
                );
                t = held_end + SimDuration::from_secs_f64(rng.gen_range(5.0..120.0));
            }
        } else {
            // Polling client, jittered ±20%.
            let interval = self.poll_interval_s.max(900.0);
            let mut t = ctx.start + SimDuration::from_secs_f64(rng.gen_range(0.0..interval));
            while t < ctx.end {
                let fetched = if rng.gen_bool(0.25) {
                    body.sample(rng) as u64
                } else {
                    900
                };
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), provider, 993)
                        .outcome(ConnOutcome::Established {
                            bytes_up: 420,
                            bytes_down: fetched,
                        })
                        .duration(SimDuration::from_secs(2))
                        .payload(b"\x16\x03\x01tls-imap"),
                );
                let jitter = rng.gen_range(0.8..1.2);
                t += SimDuration::from_secs_f64(interval * jitter);
            }
        }
        // SMTP submissions at human times.
        let sends = pw_netsim::DiurnalProfile::campus_workday().sample_arrivals(
            rng,
            self.sends_per_day / 12.0,
            ctx.start,
            ctx.end,
        );
        for s in sends {
            let up = body.sample(rng).min(8.0e6) as u64 + 1200;
            emit_connection(
                sink,
                &ConnSpec::tcp(s, ctx.ip, ephemeral_port(rng), provider, 587)
                    .outcome(ConnOutcome::Established {
                        bytes_up: up,
                        bytes_down: 800,
                    })
                    .duration(SimDuration::from_secs(4))
                    .payload(b"EHLO workstation.campus.edu\r\n"),
            );
        }
        let _ = SimTime::ZERO; // keep import used on all paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::ArgusAggregator;
    use pw_netsim::AddressSpace;

    fn run_day() -> Vec<pw_flow::FlowRecord> {
        let mut space = AddressSpace::campus();
        let ip = space.alloc_internal();
        let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(24));
        let mut rng = pw_netsim::rng::derive(21, "mail-test");
        let mut argus = ArgusAggregator::default();
        EmailClient::default().generate(&ctx, &mut rng, &mut argus);
        argus.finish(SimTime::from_hours(25))
    }

    #[test]
    fn polls_all_day_to_one_provider() {
        let flows = run_day();
        // ~72 polls/day at the 1200 s default.
        assert!(flows.len() > 50, "{}", flows.len());
        let dests: std::collections::HashSet<_> = flows.iter().map(|f| f.dst).collect();
        assert_eq!(dests.len(), 1, "mail client should stick to its provider");
        assert!(flows.iter().all(|f| !f.is_failed()));
    }

    #[test]
    fn persistent_client_holds_long_connections() {
        let mut space = AddressSpace::campus();
        let ip = space.alloc_internal();
        let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(24));
        let mut rng = pw_netsim::rng::derive(22, "mail-persistent");
        let mut argus = ArgusAggregator::default();
        EmailClient {
            persistent: true,
            ..Default::default()
        }
        .generate(&ctx, &mut rng, &mut argus);
        let flows = argus.finish(SimTime::from_hours(25));
        // A handful of held connections, not dozens of polls.
        let imap: Vec<_> = flows.iter().filter(|f| f.dport == 993).collect();
        assert!(imap.len() < 40, "{}", imap.len());
        assert!(imap
            .iter()
            .any(|f| f.duration() > pw_netsim::SimDuration::from_mins(30)));
    }

    #[test]
    fn contains_submissions() {
        let flows = run_day();
        assert!(flows.iter().any(|f| f.dport == 587 && f.src_bytes > 5_000));
    }

    #[test]
    fn no_p2p_signatures() {
        for f in run_day() {
            assert_eq!(pw_flow::signatures::classify_flow(&f), None);
        }
    }
}
