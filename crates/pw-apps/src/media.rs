//! Video streaming: few destinations, very large downloads, tiny uploads.

use rand::{Rng, RngCore};

use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::PacketSink;
use pw_netsim::sampling::LogNormal;
use pw_netsim::{DiurnalProfile, SimDuration};

use crate::model::{ephemeral_port, HostContext, TrafficModel};

/// A host streaming video from a small set of CDN endpoints.
///
/// Streaming hosts are *not* P2P: large download volume, trivial upload,
/// near-zero failed connections, and only a handful of destinations. They
/// stress the volume test's reliance on *uploaded* (not total) bytes.
#[derive(Debug, Clone)]
pub struct VideoStreaming {
    /// Expected watch sessions per day.
    pub sessions_per_day: f64,
    /// CDN endpoints available.
    pub cdn_pool: usize,
}

impl Default for VideoStreaming {
    fn default() -> Self {
        Self {
            sessions_per_day: 3.0,
            cdn_pool: 12,
        }
    }
}

impl TrafficModel for VideoStreaming {
    fn name(&self) -> &'static str {
        "video"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let watch = LogNormal::from_median_p90(900.0, 4800.0); // seconds
        let profile = DiurnalProfile::residential_evening();
        let hours = (ctx.end - ctx.start).as_secs_f64() / 3600.0;
        let sessions = profile.sample_arrivals(
            rng,
            self.sessions_per_day / hours.max(1.0) * 2.0,
            ctx.start,
            ctx.end,
        );
        for s0 in sessions {
            let cdn = ctx
                .space
                .external("video-cdn", rng.gen_range(0..self.cdn_pool as u64));
            let secs = watch.sample(rng).clamp(60.0, 3.0 * 3600.0);
            // Progressive streaming: the player holds one long connection
            // per stretch of playback (~0.5 Mbyte/s), occasionally
            // reconnecting on seeks or quality switches.
            let stretches = 1 + (secs / 1800.0) as u64;
            let mut t = s0;
            for _ in 0..stretches {
                if t >= ctx.end {
                    break;
                }
                let stretch_secs = (secs / stretches as f64).max(30.0);
                let down = (stretch_secs * 500_000.0) as u64;
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), cdn, 443)
                        .outcome(ConnOutcome::Established {
                            bytes_up: 4_000,
                            bytes_down: down,
                        })
                        .duration(SimDuration::from_secs_f64(stretch_secs - 2.0))
                        .payload(b"\x16\x03\x01tls-video"),
                );
                t += SimDuration::from_secs_f64(stretch_secs * rng.gen_range(1.0..1.3));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::ArgusAggregator;
    use pw_netsim::{AddressSpace, SimTime};

    #[test]
    fn streaming_day_is_download_heavy_few_destinations() {
        let mut space = AddressSpace::campus();
        let ip = space.alloc_internal();
        let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(24));
        let mut rng = pw_netsim::rng::derive(8, "video-test");
        let mut argus = ArgusAggregator::default();
        VideoStreaming::default().generate(&ctx, &mut rng, &mut argus);
        let flows = argus.finish(SimTime::from_hours(28));
        assert!(!flows.is_empty());
        let up: u64 = flows.iter().map(|f| f.src_bytes).sum();
        let down: u64 = flows.iter().map(|f| f.dst_bytes).sum();
        assert!(down > up * 50, "down {down} up {up}");
        let dests: std::collections::HashSet<_> = flows.iter().map(|f| f.dst).collect();
        assert!(dests.len() <= 12);
        assert!(flows.iter().all(|f| !f.is_failed()));
    }
}
