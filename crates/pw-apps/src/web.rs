//! Human web browsing: sessions of HTTP requests with DNS lookups.

use rand::{Rng, RngCore};

use pw_flow::signatures::build;
use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::PacketSink;
use pw_netsim::sampling::{LogNormal, Zipf};
use pw_netsim::{DiurnalProfile, SimDuration};

use crate::model::{ephemeral_port, HostContext, TrafficModel};

/// A human browsing the web.
///
/// Sessions arrive following a diurnal profile; within a session the user
/// visits Zipf-popular sites, each visit performing a DNS lookup plus a
/// handful of HTTP requests with log-normal response sizes, separated by
/// heavy-tailed think times. A small fraction of requests go to dead hosts
/// (stale links), keeping the failed-connection rate realistic but low.
#[derive(Debug, Clone)]
pub struct WebBrowsing {
    /// Expected browsing sessions per day at peak hours.
    pub sessions_per_day: f64,
    /// Activity profile across the day.
    pub profile: DiurnalProfile,
    /// Number of distinct sites in the user's world.
    pub site_pool: usize,
    /// Probability that a request targets a dead endpoint.
    pub dead_link_prob: f64,
    /// Median think time between requests, seconds (every user has their
    /// own pace; per-host diversity matters to the `θ_hm` test).
    pub think_median_s: f64,
}

impl Default for WebBrowsing {
    fn default() -> Self {
        Self {
            sessions_per_day: 8.0,
            profile: DiurnalProfile::campus_workday(),
            site_pool: 400,
            dead_link_prob: 0.02,
            think_median_s: 7.0,
        }
    }
}

impl TrafficModel for WebBrowsing {
    fn name(&self) -> &'static str {
        "web"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let zipf = Zipf::new(self.site_pool, 0.9);
        let resp_size = LogNormal::from_median_p90(18_000.0, 350_000.0);
        let think = LogNormal::from_median_p90(self.think_median_s, self.think_median_s * 8.0);
        let hours = (ctx.end - ctx.start).as_secs_f64() / 3600.0;
        let peak_rate = self.sessions_per_day / hours.max(1.0) * 2.0;
        let sessions = self
            .profile
            .sample_arrivals(rng, peak_rate, ctx.start, ctx.end);
        for s0 in sessions {
            // A session is a series of site *visits*; each visit reuses one
            // keep-alive connection for all of its requests (HTTP/1.1), so
            // it becomes one flow spanning the dwell time.
            let visits = 2 + (rng.gen_range(0.0f64..1.0).powi(2) * 14.0) as usize;
            let mut t = s0;
            for _ in 0..visits {
                if t >= ctx.end {
                    break;
                }
                let site = zipf.sample(rng) as u64;
                let server = ctx.space.external("web", site);
                // DNS lookup for the site (cached half the time).
                if rng.gen_bool(0.5) {
                    let resolver = ctx.space.external("dns", rng.gen_range(0..3));
                    emit_connection(
                        sink,
                        &ConnSpec::udp(t, ctx.ip, ephemeral_port(rng), resolver, 53)
                            .outcome(ConnOutcome::UdpExchange {
                                bytes_up: 45,
                                bytes_down: 160,
                            })
                            .payload(b"\x12\x34\x01\x00dns"),
                    );
                }
                let t_req = t + SimDuration::from_millis(rng.gen_range(30..300));
                if t_req >= ctx.end {
                    break;
                }
                let requests = 1 + (rng.gen_range(0.0f64..1.0).powi(2) * 12.0) as usize;
                let dwell: f64 = (0..requests)
                    .map(|_| think.sample(rng).min(600.0))
                    .sum::<f64>()
                    .max(1.0);
                if rng.gen_bool(self.dead_link_prob) {
                    emit_connection(
                        sink,
                        &ConnSpec::tcp(t_req, ctx.ip, ephemeral_port(rng), server, 80)
                            .outcome(ConnOutcome::NoAnswer),
                    );
                } else {
                    let down: u64 = (0..requests)
                        .map(|_| resp_size.sample(rng).min(5.0e6) as u64)
                        .sum();
                    let up = rng.gen_range(250..900) * requests as u64;
                    emit_connection(
                        sink,
                        &ConnSpec::tcp(t_req, ctx.ip, ephemeral_port(rng), server, 80)
                            .outcome(ConnOutcome::Established {
                                bytes_up: up,
                                bytes_down: down,
                            })
                            .duration(SimDuration::from_secs_f64(dwell))
                            .payload(build::http_get("/page").as_bytes()),
                    );
                }
                t = t_req + SimDuration::from_secs_f64(dwell + think.sample(rng).min(600.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::{ArgusAggregator, FlowState};
    use pw_netsim::{AddressSpace, SimTime};

    fn run_day(seed: u64) -> Vec<pw_flow::FlowRecord> {
        let mut space = AddressSpace::campus();
        let ip = space.alloc_internal();
        let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(24));
        let mut rng = pw_netsim::rng::derive(seed, "web-test");
        let mut argus = ArgusAggregator::default();
        WebBrowsing::default().generate(&ctx, &mut rng, &mut argus);
        argus.finish(SimTime::from_hours(25))
    }

    #[test]
    fn produces_plausible_web_day() {
        let flows = run_day(42);
        assert!(flows.len() > 20, "too few flows: {}", flows.len());
        // Mostly successful.
        let failed = flows.iter().filter(|f| f.is_failed()).count();
        assert!(
            (failed as f64) < 0.15 * flows.len() as f64,
            "{failed}/{}",
            flows.len()
        );
        // Download-dominated.
        let up: u64 = flows.iter().map(|f| f.src_bytes).sum();
        let down: u64 = flows.iter().map(|f| f.dst_bytes).sum();
        assert!(down > up * 3);
        // All initiated by the host.
        assert!(flows.iter().all(|f| f.src.octets()[0] == 10));
    }

    #[test]
    fn no_p2p_signatures() {
        for f in run_day(7) {
            assert_eq!(pw_flow::signatures::classify_flow(&f), None);
        }
    }

    #[test]
    fn respects_window() {
        let flows = run_day(3);
        assert!(flows
            .iter()
            .all(|f| f.start >= SimTime::ZERO && f.start < SimTime::from_hours(24)));
    }

    #[test]
    fn some_tcp_established_and_some_dns() {
        let flows = run_day(13);
        assert!(flows
            .iter()
            .any(|f| f.state == FlowState::Established && f.dport == 80));
        assert!(flows
            .iter()
            .any(|f| f.dport == 53 && f.state == FlowState::UdpReplied));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run_day(5), run_day(5));
        assert_ne!(run_day(5).len(), 0);
    }
}
