//! Strictly periodic system daemons: NTP and software-update checkers.
//!
//! These are the benign *machine-driven* hosts of the campus. Their traffic
//! is low-volume, low-churn, and periodic — everything the paper's tests
//! associate with Plotters — which is precisely why they matter: they supply
//! the false-positive pressure behind the paper's residual 0.81 % FP rate,
//! and they exercise `θ_hm`'s requirement that suspicious hosts cluster
//! *with each other* (all NTP daemons share timer behaviour).

use rand::{Rng, RngCore};

use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::PacketSink;
use pw_netsim::SimDuration;

use crate::model::{ephemeral_port, HostContext, TrafficModel};

/// An NTP client polling a fixed set of servers at a fixed interval.
#[derive(Debug, Clone)]
pub struct NtpDaemon {
    /// Poll interval in seconds (ntpd converges to 1024 s).
    pub interval_s: u64,
    /// Number of configured servers.
    pub servers: usize,
}

impl Default for NtpDaemon {
    fn default() -> Self {
        Self {
            interval_s: 1024,
            servers: 3,
        }
    }
}

impl TrafficModel for NtpDaemon {
    fn name(&self) -> &'static str {
        "ntp"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let servers: Vec<_> = (0..self.servers as u64)
            .map(|i| ctx.space.external("ntp", i))
            .collect();
        let sport = ephemeral_port(rng);
        let mut t = ctx.start + SimDuration::from_secs(rng.gen_range(0..self.interval_s));
        while t < ctx.end {
            for &server in &servers {
                // Tiny fixed-size exchange; clock-disciplined, ±50 ms skew.
                let skew = SimDuration::from_millis(rng.gen_range(0..100));
                emit_connection(
                    sink,
                    &ConnSpec::udp(t + skew, ctx.ip, sport, server, 123)
                        .outcome(ConnOutcome::UdpExchange {
                            bytes_up: 48,
                            bytes_down: 48,
                        })
                        .payload(b"\x23\x00\x06\x20ntp"),
                );
            }
            t += SimDuration::from_secs(self.interval_s);
        }
    }
}

/// A software-update checker hitting vendor CDNs every few hours.
#[derive(Debug, Clone)]
pub struct UpdateChecker {
    /// Check interval in seconds.
    pub interval_s: u64,
    /// Probability a check actually downloads an update.
    pub download_prob: f64,
}

impl Default for UpdateChecker {
    fn default() -> Self {
        Self {
            interval_s: 3 * 3600,
            download_prob: 0.15,
        }
    }
}

impl TrafficModel for UpdateChecker {
    fn name(&self) -> &'static str {
        "update"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let cdn = ctx.space.external("update-cdn", rng.gen_range(0..4));
        let mut t = ctx.start + SimDuration::from_secs(rng.gen_range(0..self.interval_s));
        while t < ctx.end {
            emit_connection(
                sink,
                &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), cdn, 443)
                    .outcome(ConnOutcome::Established {
                        bytes_up: 600,
                        bytes_down: 2_500,
                    })
                    .duration(SimDuration::from_secs(1))
                    .payload(b"\x16\x03\x01tls-update-check"),
            );
            if rng.gen_bool(self.download_prob) {
                let size = rng.gen_range(2_000_000..60_000_000);
                emit_connection(
                    sink,
                    &ConnSpec::tcp(
                        t + SimDuration::from_secs(5),
                        ctx.ip,
                        ephemeral_port(rng),
                        cdn,
                        443,
                    )
                    .outcome(ConnOutcome::Established {
                        bytes_up: 900,
                        bytes_down: size,
                    })
                    .duration(SimDuration::from_secs(size / 1_500_000))
                    .payload(b"\x16\x03\x01tls-update-dl"),
                );
            }
            t += SimDuration::from_secs(self.interval_s);
        }
    }
}

/// Stray failed connections every real host produces: stale bookmarks,
/// long-gone IM/update servers, applications retrying dead endpoints.
///
/// Real campus hosts show a wide spread of failed-connection rates (the
/// paper's CMU median is ≈25 %); this model supplies that baseline noise,
/// scaled per host.
#[derive(Debug, Clone)]
pub struct StrayConnections {
    /// Expected failed connection attempts per day.
    pub attempts_per_day: f64,
    /// Distinct dead endpoints this host keeps retrying.
    pub dead_pool: usize,
}

impl Default for StrayConnections {
    fn default() -> Self {
        Self {
            attempts_per_day: 12.0,
            dead_pool: 6,
        }
    }
}

impl TrafficModel for StrayConnections {
    fn name(&self) -> &'static str {
        "stray"
    }

    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink) {
        let n = pw_netsim::sampling::poisson(rng, self.attempts_per_day);
        let span = (ctx.end - ctx.start).as_millis().max(1);
        for _ in 0..n {
            let t = ctx.start + SimDuration::from_millis(rng.gen_range(0..span));
            let dead = ctx.space.external(
                "dead-services",
                rng.gen_range(0..self.dead_pool as u64 * 97),
            );
            let port = [80u16, 443, 5190, 6667, 8080][rng.gen_range(0..5usize)];
            if rng.gen_bool(0.7) {
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), dead, port)
                        .outcome(ConnOutcome::NoAnswer),
                );
            } else {
                emit_connection(
                    sink,
                    &ConnSpec::tcp(t, ctx.ip, ephemeral_port(rng), dead, port)
                        .outcome(ConnOutcome::Rejected),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::ArgusAggregator;
    use pw_netsim::{AddressSpace, SimTime};

    fn run_model(m: &dyn TrafficModel, seed: u64) -> Vec<pw_flow::FlowRecord> {
        let mut space = AddressSpace::campus();
        let ip = space.alloc_internal();
        let ctx = HostContext::new(ip, &space, SimTime::ZERO, SimTime::from_hours(24));
        let mut rng = pw_netsim::rng::derive(seed, m.name());
        let mut argus = ArgusAggregator::default();
        m.generate(&ctx, &mut rng, &mut argus);
        argus.finish(SimTime::from_hours(25))
    }

    #[test]
    fn ntp_is_periodic_small_and_low_churn() {
        let flows = run_model(&NtpDaemon::default(), 1);
        // 24 h / 1024 s ≈ 84 rounds × 3 servers.
        assert!(flows.len() > 200, "{}", flows.len());
        let dests: std::collections::HashSet<_> = flows.iter().map(|f| f.dst).collect();
        assert_eq!(dests.len(), 3);
        assert!(flows.iter().all(|f| f.src_bytes < 200));
        // Interstitial gaps to the same server are near the interval.
        let mut times: Vec<_> = flows
            .iter()
            .filter(|f| f.dst == *dests.iter().next().unwrap())
            .map(|f| f.start)
            .collect();
        times.sort();
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let near = gaps.iter().filter(|g| (*g - 1024.0).abs() < 2.0).count();
        assert!(near as f64 > 0.9 * gaps.len() as f64);
    }

    #[test]
    fn update_checker_phones_home_rarely_but_regularly() {
        let flows = run_model(&UpdateChecker::default(), 2);
        assert!(flows.len() >= 8 && flows.len() <= 30, "{}", flows.len());
        assert!(flows.iter().all(|f| f.dport == 443 && !f.is_failed()));
    }

    #[test]
    fn stray_connections_all_fail() {
        let flows = run_model(&StrayConnections::default(), 9);
        assert!(!flows.is_empty());
        assert!(flows.iter().all(pw_flow::FlowRecord::is_failed));
        // Retries hit a bounded pool of dead endpoints.
        let dests: std::collections::HashSet<_> = flows.iter().map(|f| f.dst).collect();
        assert!(dests.len() <= flows.len());
    }

    #[test]
    fn daemons_carry_no_p2p_signature() {
        for f in run_model(&NtpDaemon::default(), 3) {
            assert_eq!(pw_flow::signatures::classify_flow(&f), None);
        }
        for f in run_model(&UpdateChecker::default(), 4) {
            assert_eq!(pw_flow::signatures::classify_flow(&f), None);
        }
    }
}
