//! Background (non-P2P) traffic models for the synthetic campus.
//!
//! The paper's CMU dataset is dominated by ordinary hosts — web browsing,
//! mail, DNS, remote shells, streaming, and the periodic daemons every OS
//! runs. These models reproduce the *feature distributions* the detector
//! measures on that background population:
//!
//! - low failed-connection rates (they are filtered by the §V-A data
//!   reduction step);
//! - human think-time (heavy-tailed, aperiodic) flow interstitials for the
//!   interactive models, versus strictly periodic daemons ([`NtpDaemon`],
//!   [`UpdateChecker`]) that create realistic false-positive pressure on the
//!   machine-vs-human test;
//! - a wide range of per-flow upload volumes.
//!
//! Each model implements [`TrafficModel`]: given a host, a day window, and a
//! seeded RNG, it writes the day’s packets into a [`PacketSink`](pw_flow::PacketSink) (normally
//! the Argus aggregator).
//!
//! # Examples
//!
//! ```
//! use pw_apps::{HostContext, TrafficModel, WebBrowsing};
//! use pw_netsim::{AddressSpace, SimTime};
//!
//! let space = AddressSpace::campus();
//! let mut space = space;
//! let host = space.alloc_internal();
//! let ctx = HostContext::new(host, &space, SimTime::ZERO, SimTime::from_hours(24));
//! let mut rng = pw_netsim::rng::derive(1, "example-web");
//! let mut packets: Vec<pw_flow::Packet> = Vec::new();
//! WebBrowsing::default().generate(&ctx, &mut rng, &mut packets);
//! assert!(!packets.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemons;
pub mod mail;
pub mod media;
pub mod model;
pub mod shell;
pub mod web;

pub use daemons::{NtpDaemon, StrayConnections, UpdateChecker};
pub use mail::EmailClient;
pub use media::VideoStreaming;
pub use model::{HostContext, TrafficModel};
pub use shell::SshSessions;
pub use web::WebBrowsing;
