//! The traffic-model abstraction shared by every host behaviour.

use std::net::Ipv4Addr;

use rand::RngCore;

use pw_flow::PacketSink;
use pw_netsim::{AddressSpace, SimTime};

/// Everything a model needs to know about the host it is generating traffic
/// for and the window it must fill.
#[derive(Debug, Clone, Copy)]
pub struct HostContext<'a> {
    /// The internal host's address.
    pub ip: Ipv4Addr,
    /// The campus address space (for picking external endpoints).
    pub space: &'a AddressSpace,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl<'a> HostContext<'a> {
    /// Creates a context.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(ip: Ipv4Addr, space: &'a AddressSpace, start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "empty generation window");
        Self {
            ip,
            space,
            start,
            end,
        }
    }
}

/// A behaviour that fills a host's day with traffic.
///
/// Models are deliberately *open-loop*: they sample a day of activity in one
/// pass, which is orders of magnitude faster than event-driven simulation
/// and exactly equivalent for protocols without feedback (the closed-loop
/// protocols — the DHT overlays — run on the event engine instead).
pub trait TrafficModel {
    /// A short stable name, used to derive per-model RNG streams.
    fn name(&self) -> &'static str;

    /// Writes the host's packets for the window into `sink`.
    fn generate(&self, ctx: &HostContext<'_>, rng: &mut dyn RngCore, sink: &mut dyn PacketSink);
}

/// A random ephemeral (client-side) port.
pub fn ephemeral_port(rng: &mut dyn RngCore) -> u16 {
    32768 + (rng.next_u32() % 28000) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ephemeral_ports_in_range() {
        let mut rng = pw_netsim::rng::derive(0, "ports");
        for _ in 0..1000 {
            let p = ephemeral_port(&mut rng);
            assert!((32768..60768).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn context_rejects_empty_window() {
        let space = AddressSpace::campus();
        HostContext::new(
            Ipv4Addr::new(10, 1, 0, 1),
            &space,
            SimTime::from_secs(5),
            SimTime::from_secs(5),
        );
    }
}
