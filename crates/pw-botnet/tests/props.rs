//! Property-based tests for the bot models and evasion rewrites.

use proptest::prelude::*;
use pw_botnet::{
    apply_evasion, generate_nugache_trace, generate_storm_trace, EvasionConfig, NugacheConfig,
    StormConfig,
};
use pw_netsim::SimDuration;

fn small_storm(seed: u64, bots: usize, hours: u64) -> pw_botnet::BotTrace {
    generate_storm_trace(
        &StormConfig {
            n_bots: bots,
            external_population: 60,
            duration: SimDuration::from_hours(hours),
            ..StormConfig::default()
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Storm traces: right bot count, flows sorted, every flow involves its
    /// bot, timestamps inside the window, and eDonkey-family payloads only.
    #[test]
    fn storm_trace_invariants(seed in 0u64..1_000, bots in 1usize..5, hours in 1u64..4) {
        let trace = small_storm(seed, bots, hours);
        prop_assert_eq!(trace.bots.len(), bots);
        let end = pw_netsim::SimTime::ZERO + trace.duration + SimDuration::from_mins(5);
        for bot in &trace.bots {
            prop_assert!(!bot.flows.is_empty());
            for w in bot.flows.windows(2) {
                prop_assert!(w[0].start <= w[1].start);
            }
            for f in &bot.flows {
                prop_assert!(f.involves(bot.ip));
                prop_assert!(f.start < end);
                // Overnet control traffic classifies as eDonkey family.
                if !f.payload.is_empty() {
                    prop_assert_eq!(
                        pw_flow::signatures::classify_flow(f),
                        Some(pw_flow::signatures::P2pApp::Emule)
                    );
                }
            }
        }
    }

    /// Nugache traces: opaque payloads, port 8, bounded peer sets.
    #[test]
    fn nugache_trace_invariants(seed in 0u64..1_000, bots in 1usize..8) {
        let cfg = NugacheConfig {
            n_bots: bots,
            duration: SimDuration::from_hours(3),
            ..NugacheConfig::default()
        };
        let trace = generate_nugache_trace(&cfg, seed);
        for bot in &trace.bots {
            let mut peers = std::collections::HashSet::new();
            for f in &bot.flows {
                prop_assert_eq!(f.dport, 8);
                prop_assert_eq!(pw_flow::signatures::classify_flow(f), None);
                peers.insert(f.peer_of(bot.ip).unwrap());
            }
            prop_assert!(peers.len() <= cfg.peer_list_range.1);
        }
    }

    /// Evasion composition: applying the identity config any number of
    /// times changes nothing; volume multipliers compose multiplicatively
    /// on totals (within integer truncation).
    #[test]
    fn evasion_identity_and_composition(seed in 0u64..500) {
        let trace = small_storm(seed, 2, 2);
        let id = apply_evasion(&trace, &EvasionConfig::default(), seed);
        prop_assert_eq!(&id, &trace);

        let once = apply_evasion(
            &trace,
            &EvasionConfig { volume_multiplier: 4.0, ..Default::default() },
            seed,
        );
        let up = |t: &pw_botnet::BotTrace| -> u64 {
            t.bots
                .iter()
                .flat_map(|b| b.flows.iter().map(move |f| f.bytes_uploaded_by(b.ip).unwrap()))
                .sum()
        };
        let (base, scaled) = (up(&trace), up(&once));
        prop_assert!(scaled >= base * 3 && scaled <= base * 4 + trace.total_flows() as u64 * 4);
    }

    /// Jitter never creates or destroys flows and keeps peers identical.
    #[test]
    fn jitter_preserves_structure(seed in 0u64..500, d in 1u64..7_200) {
        let trace = small_storm(seed, 2, 2);
        let evaded = apply_evasion(&trace, &EvasionConfig::jitter_only(SimDuration::from_secs(d)), seed);
        prop_assert_eq!(evaded.total_flows(), trace.total_flows());
        for (a, b) in trace.bots.iter().zip(&evaded.bots) {
            let peers = |bt: &pw_botnet::BotHostTrace| -> std::collections::HashSet<_> {
                bt.flows.iter().map(|f| f.peer_of(bt.ip).unwrap()).collect()
            };
            prop_assert_eq!(peers(a), peers(b));
        }
    }
}
