//! The Storm botnet over a simulated Overnet overlay.
//!
//! Storm's control plane (as reverse-engineered in the literature the paper
//! cites) has three machine-driven activities, all reproduced here over the
//! real Kademlia substrate:
//!
//! 1. **keepalive pings** to the bot's stored peer list, on a fixed timer —
//!    the persistence / low-churn signal;
//! 2. **rendezvous searches** for keys derived from the date and a small
//!    random slot, which controller nodes publish — how bots find commands;
//! 3. **publicize** cycles announcing the bot to the network.
//!
//! All bots run the same binary, so their timers share the same algorithm —
//! the cross-host similarity `θ_hm` clusters on.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use rand::seq::SliceRandom;
use rand::Rng;

use pw_kad::{KadConfig, KadEvent, KadSim, LookupGoal, NodeId, WireKind};
use pw_netsim::{rng, Engine, SimDuration, SimTime};

use crate::trace::{split_by_bot, BotFamily, BotTrace, FilterSink};

/// Storm simulation parameters. Defaults match the paper's trace: 13 bots,
/// 24 hours.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Honeynet bots captured.
    pub n_bots: usize,
    /// External Overnet population the bots interact with.
    pub external_population: usize,
    /// Fraction of external nodes that never answer (NAT'd/firewalled).
    pub unresponsive_frac: f64,
    /// Fraction of external nodes offline for the day (departed peers that
    /// remain in stored peer lists).
    pub offline_frac: f64,
    /// Stored peer-list entries per bot.
    pub peer_list_size: usize,
    /// Keepalive timer: ping peer-list entries each interval.
    pub ping_interval: SimDuration,
    /// Rendezvous search timer.
    pub search_interval: SimDuration,
    /// Publicize timer.
    pub publicize_interval: SimDuration,
    /// Uniform timer jitter (milliseconds) — small: these are machine timers.
    pub timer_jitter_ms: u64,
    /// Controller nodes publishing rendezvous keys.
    pub controllers: usize,
    /// Capture length.
    pub duration: SimDuration,
    /// Day index, entering the rendezvous key derivation.
    pub day: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        Self {
            n_bots: 13,
            external_population: 150,
            unresponsive_frac: 0.30,
            offline_frac: 0.28,
            peer_list_size: 24,
            ping_interval: SimDuration::from_secs(300),
            search_interval: SimDuration::from_secs(600),
            publicize_interval: SimDuration::from_secs(900),
            timer_jitter_ms: 3_000,
            controllers: 3,
            duration: SimDuration::from_hours(24),
            day: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum StormEvent {
    Kad(KadEvent),
    PingCycle { bot: usize },
    PingOne { bot: usize, entry: usize },
    SearchCycle { bot: usize },
    PublicizeCycle { bot: usize },
    ControllerPublish { ctrl: usize },
}

impl From<KadEvent> for StormEvent {
    fn from(e: KadEvent) -> Self {
        StormEvent::Kad(e)
    }
}

/// The rendezvous key every Storm binary derives for (`day`, `slot`, `r`).
pub fn rendezvous_key(day: u64, slot: u64, r: u64) -> NodeId {
    NodeId::hash_of(format!("storm-rendezvous-{day}-{slot}-{r}").as_bytes())
}

/// Runs the Storm overlay for one capture and returns the honeynet trace.
///
/// Deterministic in (`cfg`, `seed`).
pub fn generate_storm_trace(cfg: &StormConfig, seed: u64) -> BotTrace {
    assert!(
        cfg.n_bots > 0 && cfg.external_population >= 20,
        "population too small"
    );
    let mut master = rng::derive(seed, "storm-trace");
    let mut sim = KadSim::new(
        KadConfig {
            k: 8,
            alpha: 3,
            ..KadConfig::default()
        },
        seed ^ 0x5707,
    );
    let mut engine: Engine<StormEvent> = Engine::new();

    // --- External Overnet population. ---
    let mut externals = Vec::new();
    for i in 0..cfg.external_population {
        let id = NodeId::random(&mut master);
        let ip = Ipv4Addr::new(
            60 + (i / 65536) as u8,
            ((i / 256) % 256) as u8,
            (i % 256) as u8,
            (17 + i % 200) as u8,
        );
        let h = sim.add_node(id, ip, WireKind::Overnet.default_port(), WireKind::Overnet);
        let offline = master.gen_bool(cfg.offline_frac);
        sim.set_online(h, !offline);
        if !offline && master.gen_bool(cfg.unresponsive_frac) {
            sim.set_responsive(h, false);
        }
        externals.push(h);
    }
    // Seed external routing tables (the overlay pre-exists the capture).
    for (i, &h) in externals.iter().enumerate() {
        let mut seeds = Vec::new();
        for d in 1..=6usize {
            seeds.push(externals[(i + d * 13) % externals.len()]);
            seeds.push(externals[(i + d * 41) % externals.len()]);
        }
        sim.bootstrap(h, &seeds);
    }

    // --- Honeynet bots. ---
    let mut bot_handles = Vec::new();
    let mut bot_ips = Vec::new();
    for b in 0..cfg.n_bots {
        let id = NodeId::random(&mut master);
        let ip = Ipv4Addr::new(172, 16, 0, (b + 1) as u8);
        let h = sim.add_node(id, ip, WireKind::Overnet.default_port(), WireKind::Overnet);
        sim.set_online(h, true);
        bot_handles.push(h);
        bot_ips.push(ip);
    }
    // Peer lists: stored contacts from the external population.
    let mut peer_lists: Vec<Vec<pw_kad::NodeHandle>> = Vec::new();
    for (b, &h) in bot_handles.iter().enumerate() {
        let mut rng_b = rng::derive_indexed(seed, "storm-bot-peers", b as u64);
        let mut list: Vec<_> = externals
            .choose_multiple(&mut rng_b, cfg.peer_list_size)
            .copied()
            .collect();
        list.sort_by_key(|h| h.index());
        sim.bootstrap(h, &list);
        peer_lists.push(list);
    }

    // --- Controllers publish rendezvous keys hourly. ---
    let controllers: Vec<_> = externals
        .iter()
        .copied()
        .filter(|&h| sim.is_online(h))
        .take(cfg.controllers)
        .collect();

    // --- Timer kickoff (per-bot phase offsets, same periods). ---
    for b in 0..cfg.n_bots {
        let mut rng_b = rng::derive_indexed(seed, "storm-bot-timers", b as u64);
        engine.schedule_at(
            SimTime::from_millis(rng_b.gen_range(0..cfg.ping_interval.as_millis())),
            StormEvent::PingCycle { bot: b },
        );
        engine.schedule_at(
            SimTime::from_millis(rng_b.gen_range(0..cfg.search_interval.as_millis())),
            StormEvent::SearchCycle { bot: b },
        );
        engine.schedule_at(
            SimTime::from_millis(rng_b.gen_range(0..cfg.publicize_interval.as_millis())),
            StormEvent::PublicizeCycle { bot: b },
        );
    }
    for c in 0..controllers.len() {
        engine.schedule_at(
            SimTime::from_millis(c as u64 * 1000),
            StormEvent::ControllerPublish { ctrl: c },
        );
    }

    // --- Run. ---
    let keep: HashSet<Ipv4Addr> = bot_ips.iter().copied().collect();
    let mut sink = FilterSink::new(pw_flow::ArgusAggregator::default(), keep);
    let end = SimTime::ZERO + cfg.duration;
    let mut timer_rng = rng::derive(seed, "storm-timer-jitter");
    let jitter = |rng: &mut rand::rngs::StdRng, base: SimDuration, ms: u64| {
        if ms == 0 {
            base
        } else {
            SimDuration::from_millis(
                base.as_millis().saturating_sub(ms / 2) + rng.gen_range(0..=ms),
            )
        }
    };
    engine.run_until(end, |eng, ev| match ev {
        StormEvent::Kad(k) => sim.handle(eng, &mut sink, k),
        StormEvent::PingCycle { bot } => {
            // Stagger individual pings across the next few seconds.
            for entry in 0..peer_lists[bot].len() {
                let off = SimDuration::from_millis(timer_rng.gen_range(0..8_000));
                eng.schedule_after(off, StormEvent::PingOne { bot, entry });
            }
            let next = jitter(&mut timer_rng, cfg.ping_interval, cfg.timer_jitter_ms);
            eng.schedule_after(next, StormEvent::PingCycle { bot });
        }
        StormEvent::PingOne { bot, entry } => {
            let peer = peer_lists[bot][entry];
            sim.ping(eng, &mut sink, bot_handles[bot], peer);
            // Occasionally refresh a dead entry from the routing table.
            if timer_rng.gen_bool(0.008) {
                let learned = sim.table_contacts(bot_handles[bot]);
                if let Some(c) = learned.choose(&mut timer_rng) {
                    peer_lists[bot][entry] = c.handle;
                }
            }
        }
        StormEvent::SearchCycle { bot } => {
            let slot = eng.now().hour_of_day() as u64;
            let r = timer_rng.gen_range(0..4);
            let key = rendezvous_key(cfg.day, slot, r);
            sim.start_lookup(eng, &mut sink, bot_handles[bot], key, LookupGoal::Search);
            let next = jitter(&mut timer_rng, cfg.search_interval, cfg.timer_jitter_ms);
            eng.schedule_after(next, StormEvent::SearchCycle { bot });
        }
        StormEvent::PublicizeCycle { bot } => {
            let me = sim.id_of(bot_handles[bot]);
            sim.start_lookup(eng, &mut sink, bot_handles[bot], me, LookupGoal::Publish);
            let next = jitter(&mut timer_rng, cfg.publicize_interval, cfg.timer_jitter_ms);
            eng.schedule_after(next, StormEvent::PublicizeCycle { bot });
        }
        StormEvent::ControllerPublish { ctrl } => {
            let slot = eng.now().hour_of_day() as u64;
            for r in 0..4 {
                let key = rendezvous_key(cfg.day, slot, r);
                sim.start_lookup(eng, &mut sink, controllers[ctrl], key, LookupGoal::Publish);
            }
            eng.schedule_after(
                SimDuration::from_hours(1),
                StormEvent::ControllerPublish { ctrl },
            );
        }
    });

    let flows = sink.into_inner().finish(end + SimDuration::from_secs(120));
    split_by_bot(&flows, &bot_ips, BotFamily::Storm, cfg.duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::signatures::{classify_flow, P2pApp};

    fn small_cfg() -> StormConfig {
        StormConfig {
            n_bots: 4,
            external_population: 80,
            duration: SimDuration::from_hours(3),
            ..StormConfig::default()
        }
    }

    #[test]
    fn trace_has_one_entry_per_bot_with_flows() {
        let trace = generate_storm_trace(&small_cfg(), 7);
        assert_eq!(trace.bots.len(), 4);
        for b in &trace.bots {
            assert!(
                b.flows.len() > 50,
                "bot {:?} has only {} flows",
                b.ip,
                b.flows.len()
            );
            assert!(b.flows.iter().all(|f| f.involves(b.ip)));
        }
    }

    #[test]
    fn storm_flows_are_tiny_udp_with_edonkey_payload() {
        let trace = generate_storm_trace(&small_cfg(), 8);
        let flows = &trace.bots[0].flows;
        let avg_up: f64 = flows
            .iter()
            .map(|f| f.bytes_uploaded_by(trace.bots[0].ip).unwrap_or(0))
            .sum::<u64>() as f64
            / flows.len() as f64;
        assert!(avg_up < 500.0, "Storm per-flow upload too big: {avg_up}");
        let classified = flows
            .iter()
            .filter(|f| classify_flow(f) == Some(P2pApp::Emule))
            .count();
        assert!(
            classified * 2 > flows.len(),
            "Overnet payloads should classify as eDonkey family"
        );
    }

    #[test]
    fn keepalives_are_periodic_to_same_peers() {
        let trace = generate_storm_trace(&small_cfg(), 9);
        let bot = &trace.bots[0];
        // Find a destination with many flows and check the dominant gap is
        // near the ping interval.
        use std::collections::HashMap;
        let mut per_dest: HashMap<_, Vec<SimTime>> = HashMap::new();
        for f in &bot.flows {
            if let Some(p) = f.peer_of(bot.ip) {
                per_dest.entry(p).or_default().push(f.start);
            }
        }
        let busiest = per_dest.values_mut().max_by_key(|v| v.len()).unwrap();
        busiest.sort();
        assert!(busiest.len() >= 10);
        let gaps: Vec<f64> = busiest
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let near = gaps.iter().filter(|g| (**g - 300.0).abs() < 30.0).count();
        assert!(
            near * 2 > gaps.len(),
            "ping periodicity not dominant: {near}/{} gaps near 300 s",
            gaps.len()
        );
    }

    #[test]
    fn some_keepalives_fail() {
        let trace = generate_storm_trace(&small_cfg(), 10);
        let bot = &trace.bots[1];
        let initiated: Vec<_> = bot.flows.iter().filter(|f| f.src == bot.ip).collect();
        let failed = initiated.iter().filter(|f| f.is_failed()).count();
        let rate = failed as f64 / initiated.len() as f64;
        assert!(rate > 0.1 && rate < 0.7, "failed rate {rate}");
    }

    #[test]
    fn low_churn_after_first_hour() {
        let cfg = StormConfig {
            n_bots: 3,
            external_population: 120,
            duration: SimDuration::from_hours(6),
            ..StormConfig::default()
        };
        let trace = generate_storm_trace(&cfg, 11);
        let bot = &trace.bots[0];
        let mut first_contact: std::collections::HashMap<Ipv4Addr, SimTime> = Default::default();
        for f in &bot.flows {
            if let Some(p) = f.peer_of(bot.ip) {
                first_contact.entry(p).or_insert(f.start);
            }
        }
        let first_activity = bot.flows.first().unwrap().start;
        let cutoff = first_activity + SimDuration::from_hours(1);
        let new = first_contact.values().filter(|&&t| t > cutoff).count();
        let frac = new as f64 / first_contact.len() as f64;
        assert!(frac < 0.55, "Storm churn too high: {frac}");
    }

    #[test]
    fn deterministic() {
        let a = generate_storm_trace(&small_cfg(), 3);
        let b = generate_storm_trace(&small_cfg(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn rendezvous_keys_shared_across_bots() {
        assert_eq!(rendezvous_key(1, 2, 3), rendezvous_key(1, 2, 3));
        assert_ne!(rendezvous_key(1, 2, 3), rendezvous_key(2, 2, 3));
    }
}
