//! P2P bot models — the paper's **Plotters**.
//!
//! Two families, matching the paper's honeynet traces (§III):
//!
//! - [`storm`]: Storm, whose command-and-control runs over the Overnet
//!   Kademlia network. Our Storm bots participate in a real simulated
//!   Overnet overlay (`pw-kad`): machine-timed peer-list keepalives,
//!   periodic rendezvous *searches* for date-derived keys that controller
//!   nodes *publish*, and publicize cycles. Control messages are tiny; a
//!   bot's traffic is low-volume, low-churn, persistent, and periodic —
//!   the four behaviours the detector keys on.
//! - [`nugache`]: Nugache, a TCP-based P2P bot with encrypted payloads
//!   (never matching any payload signature), 10 s / 25 s / 50 s timer
//!   classes, a bounded stored peer list whose mostly-dead entries are
//!   retried endlessly (>65 % failed connections, like the paper's trace),
//!   and heavy-tailed per-bot activity levels (the paper observed "large
//!   variance in the activity levels of the Nugache bots").
//!
//! Traces are produced *standalone* over 24 hours ([`BotTrace`]), exactly
//! like the honeynet collections the paper overlays onto campus traffic;
//! `pw-data` performs the overlay. [`evasion`] implements the §VI
//! counter-detection transformations (volume inflation, new-peer inflation,
//! ±d interstitial jitter) as trace rewrites, which is precisely how the
//! paper simulated evading Plotters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evasion;
pub mod nugache;
pub mod storm;
pub mod trace;

pub use evasion::{apply_evasion, EvasionConfig};
pub use nugache::{generate_nugache_trace, NugacheConfig};
pub use storm::{generate_storm_trace, StormConfig};
pub use trace::{BotFamily, BotHostTrace, BotTrace};
