//! Bot trace containers — the synthetic stand-in for the paper's honeynet
//! captures.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use pw_flow::{FlowRecord, Packet, PacketSink};
use pw_netsim::SimDuration;

/// Which malware family a trace belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BotFamily {
    /// Storm / Peacomm (Overnet-based).
    Storm,
    /// Nugache (TCP-based).
    Nugache,
}

impl std::fmt::Display for BotFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BotFamily::Storm => write!(f, "storm"),
            BotFamily::Nugache => write!(f, "nugache"),
        }
    }
}

/// One bot's 24-hour flow trace, keyed by its honeynet address (rewritten
/// at overlay time).
#[derive(Debug, Clone, PartialEq)]
pub struct BotHostTrace {
    /// The bot's address inside the honeynet capture.
    pub ip: Ipv4Addr,
    /// Every border flow the bot participated in, sorted by start time.
    pub flows: Vec<FlowRecord>,
}

/// A full honeynet capture: one trace per bot.
#[derive(Debug, Clone, PartialEq)]
pub struct BotTrace {
    /// Malware family.
    pub family: BotFamily,
    /// Per-bot flow traces.
    pub bots: Vec<BotHostTrace>,
    /// Capture length.
    pub duration: SimDuration,
}

impl BotTrace {
    /// Total flows across all bots.
    pub fn total_flows(&self) -> usize {
        self.bots.iter().map(|b| b.flows.len()).sum()
    }

    /// Per-bot flow counts (for the Figure 10 CDFs).
    pub fn flow_counts(&self) -> Vec<usize> {
        self.bots.iter().map(|b| b.flows.len()).collect()
    }
}

/// A [`PacketSink`] that forwards only packets involving a set of watched
/// addresses — the honeynet's capture filter.
#[derive(Debug)]
pub struct FilterSink<S> {
    inner: S,
    keep: HashSet<Ipv4Addr>,
}

impl<S: PacketSink> FilterSink<S> {
    /// Wraps `inner`, keeping only packets whose source or destination is in
    /// `keep`.
    pub fn new(inner: S, keep: HashSet<Ipv4Addr>) -> Self {
        Self { inner, keep }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PacketSink> PacketSink for FilterSink<S> {
    fn emit(&mut self, packet: Packet) {
        if self.keep.contains(&packet.src) || self.keep.contains(&packet.dst) {
            self.inner.emit(packet);
        }
    }
}

/// Groups aggregated flows into per-bot traces (a flow involving two bots is
/// recorded under both).
pub fn split_by_bot(
    flows: &[FlowRecord],
    bot_ips: &[Ipv4Addr],
    family: BotFamily,
    duration: SimDuration,
) -> BotTrace {
    let bots = bot_ips
        .iter()
        .map(|&ip| BotHostTrace {
            ip,
            flows: flows.iter().filter(|f| f.involves(ip)).copied().collect(),
        })
        .collect();
    BotTrace {
        family,
        bots,
        duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_flow::{Payload, Proto, TcpFlags};
    use pw_netsim::SimTime;

    fn packet(src: Ipv4Addr, dst: Ipv4Addr) -> Packet {
        Packet {
            time: SimTime::ZERO,
            src,
            dst,
            sport: 1,
            dport: 2,
            proto: Proto::Udp,
            pkts: 1,
            bytes: 50,
            flags: TcpFlags::NONE,
            payload: Payload::empty(),
        }
    }

    #[test]
    fn filter_sink_keeps_only_watched() {
        let a = Ipv4Addr::new(172, 16, 0, 1);
        let b = Ipv4Addr::new(8, 8, 8, 8);
        let c = Ipv4Addr::new(9, 9, 9, 9);
        let mut sink = FilterSink::new(Vec::new(), [a].into_iter().collect());
        sink.emit(packet(a, b)); // kept: src watched
        sink.emit(packet(b, a)); // kept: dst watched
        sink.emit(packet(b, c)); // dropped
        assert_eq!(sink.into_inner().len(), 2);
    }

    #[test]
    fn split_assigns_flows_to_bots() {
        let a = Ipv4Addr::new(172, 16, 0, 1);
        let b = Ipv4Addr::new(172, 16, 0, 2);
        let ext = Ipv4Addr::new(8, 8, 8, 8);
        let mk = |src, dst| FlowRecord {
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            src,
            sport: 1,
            dst,
            dport: 2,
            proto: Proto::Udp,
            src_pkts: 1,
            src_bytes: 10,
            dst_pkts: 0,
            dst_bytes: 0,
            state: pw_flow::FlowState::UdpSilent,
            payload: Payload::empty(),
        };
        let flows = vec![mk(a, ext), mk(ext, b), mk(a, b)];
        let trace = split_by_bot(
            &flows,
            &[a, b],
            BotFamily::Storm,
            SimDuration::from_hours(24),
        );
        assert_eq!(trace.bots.len(), 2);
        assert_eq!(trace.bots[0].flows.len(), 2); // a↔ext and a↔b
        assert_eq!(trace.bots[1].flows.len(), 2); // ext↔b and a↔b
        assert_eq!(trace.total_flows(), 4);
        assert_eq!(trace.flow_counts(), vec![2, 2]);
    }
}
