//! Evasion transformations (§VI of the paper).
//!
//! The paper quantifies how much a Plotter would have to change to slip
//! past each test, by *rewriting its trace*: "We use the same Plotter
//! traces that were used in the evaluation for this simulation, but add (or
//! subtract) a random delay before every connection a Plotter makes to a
//! peer with which it had previously communicated." [`apply_evasion`]
//! implements exactly those rewrites:
//!
//! - **volume inflation** (evade `θ_vol`): multiply the bytes the bot
//!   uploads in every flow;
//! - **new-peer inflation** (evade `θ_churn`): add one-off connections to
//!   fresh addresses, raising the fraction of new IPs contacted;
//! - **interstitial jitter** (evade `θ_hm`): shift every repeat-peer
//!   connection by a uniform ±d delay.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use rand::Rng;

use pw_flow::{FlowRecord, FlowState, Payload, Proto};
use pw_netsim::{rng, SimDuration, SimTime};

use crate::trace::BotTrace;

/// How an evading Plotter rewrites its behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvasionConfig {
    /// Multiply every flow's bot-uploaded bytes by this factor (≥ 1).
    pub volume_multiplier: f64,
    /// Multiply the number of *distinct new* IPs contacted by this factor
    /// (≥ 1) via extra one-off connections.
    pub new_peer_multiplier: f64,
    /// Add a uniform delay in `[−d, +d]` to each connection made to a peer
    /// the bot has contacted before.
    pub jitter: Option<SimDuration>,
}

impl Default for EvasionConfig {
    fn default() -> Self {
        Self {
            volume_multiplier: 1.0,
            new_peer_multiplier: 1.0,
            jitter: None,
        }
    }
}

impl EvasionConfig {
    /// Pure-jitter configuration (the Figure 12 sweep).
    pub fn jitter_only(d: SimDuration) -> Self {
        Self {
            jitter: Some(d),
            ..Self::default()
        }
    }
}

/// Rewrites a bot trace according to `cfg`. Deterministic in
/// (`trace`, `cfg`, `seed`).
///
/// # Panics
///
/// Panics if a multiplier is below 1.
pub fn apply_evasion(trace: &BotTrace, cfg: &EvasionConfig, seed: u64) -> BotTrace {
    assert!(
        cfg.volume_multiplier >= 1.0 && cfg.new_peer_multiplier >= 1.0,
        "multipliers must be >= 1"
    );
    let mut out = trace.clone();
    for (b, bot) in out.bots.iter_mut().enumerate() {
        let mut r = rng::derive_indexed(seed, "evasion", b as u64);
        // --- Volume inflation. ---
        if cfg.volume_multiplier > 1.0 {
            for f in &mut bot.flows {
                if f.src == bot.ip {
                    f.src_bytes = (f.src_bytes as f64 * cfg.volume_multiplier) as u64;
                } else {
                    f.dst_bytes = (f.dst_bytes as f64 * cfg.volume_multiplier) as u64;
                }
            }
        }
        // --- Interstitial jitter on repeat-peer connections. ---
        if let Some(d) = cfg.jitter {
            if d > SimDuration::ZERO {
                let mut seen: HashSet<Ipv4Addr> = HashSet::new();
                let d_ms = d.as_millis() as i64;
                for f in &mut bot.flows {
                    let Some(peer) = f.peer_of(bot.ip) else {
                        continue;
                    };
                    if !seen.insert(peer) {
                        let delta = r.gen_range(-d_ms..=d_ms);
                        let shift = |t: SimTime| {
                            SimTime::from_millis((t.as_millis() as i64 + delta).max(0) as u64)
                        };
                        let dur = f.end - f.start;
                        f.start = shift(f.start);
                        f.end = f.start + dur;
                    }
                }
                bot.flows.sort_by_key(|f| (f.start, f.sport, f.dport));
            }
        }
        // --- New-peer inflation. ---
        if cfg.new_peer_multiplier > 1.0 {
            let distinct: HashSet<Ipv4Addr> =
                bot.flows.iter().filter_map(|f| f.peer_of(bot.ip)).collect();
            let extra = ((cfg.new_peer_multiplier - 1.0) * distinct.len() as f64).round() as usize;
            let span = trace.duration.as_millis().max(1);
            for i in 0..extra {
                let t = SimTime::from_millis(r.gen_range(0..span));
                // A fresh address the bot has never contacted: one-shot probe.
                let fresh = Ipv4Addr::new(
                    198,
                    ((b * 37 + i) % 250) as u8 + 1,
                    ((i * 13) % 250) as u8 + 1,
                    (r.gen_range(0..250) + 1) as u8,
                );
                bot.flows.push(FlowRecord {
                    start: t,
                    end: t + SimDuration::from_secs(9),
                    src: bot.ip,
                    sport: 32_768 + (i % 28_000) as u16,
                    dst: fresh,
                    dport: 8,
                    proto: Proto::Tcp,
                    src_pkts: 3,
                    src_bytes: 120,
                    dst_pkts: 0,
                    dst_bytes: 0,
                    state: FlowState::SynNoAnswer,
                    payload: Payload::empty(),
                });
            }
            bot.flows.sort_by_key(|f| (f.start, f.sport, f.dport));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nugache::{generate_nugache_trace, NugacheConfig};

    fn base_trace() -> BotTrace {
        generate_nugache_trace(
            &NugacheConfig {
                n_bots: 6,
                ..Default::default()
            },
            1,
        )
    }

    #[test]
    fn identity_config_is_noop() {
        let t = base_trace();
        let e = apply_evasion(&t, &EvasionConfig::default(), 5);
        assert_eq!(t, e);
    }

    #[test]
    fn volume_multiplier_scales_uploads() {
        let t = base_trace();
        let cfg = EvasionConfig {
            volume_multiplier: 3.0,
            ..Default::default()
        };
        let e = apply_evasion(&t, &cfg, 5);
        let up = |tr: &BotTrace| -> u64 {
            tr.bots
                .iter()
                .flat_map(|b| {
                    b.flows
                        .iter()
                        .map(move |f| f.bytes_uploaded_by(b.ip).unwrap_or(0))
                })
                .sum()
        };
        let (before, after) = (up(&t), up(&e));
        assert!(after > before * 2 && after <= before * 3 + t.total_flows() as u64 * 3);
    }

    #[test]
    fn new_peer_multiplier_adds_fresh_destinations() {
        let t = base_trace();
        let cfg = EvasionConfig {
            new_peer_multiplier: 1.5,
            ..Default::default()
        };
        let e = apply_evasion(&t, &cfg, 5);
        for (b0, b1) in t.bots.iter().zip(&e.bots) {
            let d0: HashSet<_> = b0.flows.iter().filter_map(|f| f.peer_of(b0.ip)).collect();
            let d1: HashSet<_> = b1.flows.iter().filter_map(|f| f.peer_of(b1.ip)).collect();
            let expect = d0.len() + ((0.5 * d0.len() as f64).round() as usize);
            assert!(
                (d1.len() as i64 - expect as i64).abs() <= 2,
                "distinct {} -> {}, expected ~{expect}",
                d0.len(),
                d1.len()
            );
        }
    }

    #[test]
    fn jitter_moves_only_repeat_contacts() {
        let t = base_trace();
        let cfg = EvasionConfig::jitter_only(SimDuration::from_secs(60));
        let e = apply_evasion(&t, &cfg, 5);
        for (b0, b1) in t.bots.iter().zip(&e.bots) {
            assert_eq!(b0.flows.len(), b1.flows.len());
            // First contact to each peer is unmoved: compare the earliest
            // flow per peer.
            use std::collections::HashMap;
            let firsts = |bt: &crate::trace::BotHostTrace| -> HashMap<Ipv4Addr, SimTime> {
                let mut m = HashMap::new();
                for f in &bt.flows {
                    if let Some(p) = f.peer_of(bt.ip) {
                        let ent = m.entry(p).or_insert(f.start);
                        if f.start < *ent {
                            *ent = f.start;
                        }
                    }
                }
                m
            };
            let f0 = firsts(b0);
            let f1 = firsts(b1);
            // Jitter can only move repeats; a repeat jittered *earlier* than
            // the original first contact can lower the min, never raise it.
            for (p, t0) in &f0 {
                assert!(f1[p] <= *t0 + SimDuration::from_secs(60));
            }
        }
    }

    #[test]
    fn jitter_keeps_flows_sorted_and_durations_intact() {
        let t = base_trace();
        let e = apply_evasion(
            &t,
            &EvasionConfig::jitter_only(SimDuration::from_mins(10)),
            6,
        );
        for b in &e.bots {
            for w in b.flows.windows(2) {
                assert!(w[0].start <= w[1].start);
            }
            for f in &b.flows {
                assert!(f.end >= f.start);
            }
        }
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_sub_unit_multiplier() {
        apply_evasion(
            &base_trace(),
            &EvasionConfig {
                volume_multiplier: 0.5,
                ..Default::default()
            },
            1,
        );
    }
}
