//! The Nugache botnet: TCP peer-to-peer with encrypted payloads.
//!
//! Nugache (per the Stover et al. analysis the paper cites) connects to
//! peers over TCP (famously on port 8), encrypts everything, and keeps a
//! bounded stored peer list. The paper's trace showed two things our model
//! must reproduce:
//!
//! - almost every bot has **> 65 % failed connections** — the stored list is
//!   mostly dead or NAT'd peers that the bot keeps retrying;
//! - **activity levels vary enormously** across bots (some barely speak),
//!   which is what drove the paper's lower (30 %) detection rate (Fig. 10).
//!
//! Communication happens in episodes: the bot engages a few list entries
//! and re-contacts each at a fixed per-entry timer class (≈10 s / 25 s /
//! 50 s — the periodicities visible in the paper's Figure 3(b)).

use std::net::Ipv4Addr;

use rand::seq::SliceRandom;
use rand::Rng;

use pw_flow::signatures::build;
use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::{ArgusAggregator, PacketSink};
use pw_netsim::{rng, SimDuration, SimTime};

use crate::trace::{split_by_bot, BotFamily, BotTrace};

/// Nugache's characteristic TCP port.
pub const NUGACHE_PORT: u16 = 8;

/// Nugache simulation parameters. Defaults match the paper's trace: 82
/// bots, 24 hours.
#[derive(Debug, Clone)]
pub struct NugacheConfig {
    /// Honeynet bots captured.
    pub n_bots: usize,
    /// Size of the global peer pool bot lists draw from.
    pub peer_pool: usize,
    /// Stored peer-list size range per bot.
    pub peer_list_range: (usize, usize),
    /// Probability a stored peer is alive and reachable at all.
    pub peer_alive_prob: f64,
    /// Timer classes (seconds) assigned per peer entry.
    pub timer_classes: [f64; 3],
    /// Communication episodes per day for a fully active bot.
    pub episodes_at_full_activity: f64,
    /// Fraction of bots that are healthy, chatty participants; the rest are
    /// barely alive (the paper's trace showed exactly this split, which its
    /// authors attributed to "the limited viability of the Nugache botnet
    /// at the time").
    pub strong_frac: f64,
    /// Activity range of healthy bots.
    pub strong_activity: (f64, f64),
    /// Activity range of barely-alive bots.
    pub weak_activity: (f64, f64),
    /// Capture length.
    pub duration: SimDuration,
}

impl Default for NugacheConfig {
    fn default() -> Self {
        Self {
            n_bots: 82,
            peer_pool: 260,
            peer_list_range: (10, 42),
            peer_alive_prob: 0.22,
            timer_classes: [10.0, 25.0, 50.0],
            episodes_at_full_activity: 200.0,
            strong_frac: 0.25,
            strong_activity: (0.75, 1.0),
            weak_activity: (0.001, 0.012),
            duration: SimDuration::from_hours(24),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PeerEntry {
    ip: Ipv4Addr,
    alive: bool,
    timer_class: f64,
}

fn bot_day<S: PacketSink>(
    cfg: &NugacheConfig,
    sink: &mut S,
    bot_ip: Ipv4Addr,
    list: &[PeerEntry],
    activity: f64,
    rng: &mut rand::rngs::StdRng,
) {
    let end = SimTime::ZERO + cfg.duration;
    let episodes = (cfg.episodes_at_full_activity * activity).max(0.6);
    let n_episodes = pw_netsim::sampling::poisson(rng, episodes).max(1);
    let mut payload_seed: u64 = rng.gen();
    for _ in 0..n_episodes {
        let t0 = SimTime::from_millis(rng.gen_range(0..cfg.duration.as_millis()));
        // Engage a few entries from the stored list.
        let engaged = rng.gen_range(1..=3.min(list.len()));
        let entries: Vec<&PeerEntry> = list.choose_multiple(rng, engaged).collect();
        for entry in entries {
            // Contact this entry at its timer class for the episode length.
            let rounds = rng.gen_range(10..34u64);
            let mut t = t0 + SimDuration::from_millis(rng.gen_range(0..3_000));
            for _ in 0..rounds {
                if t >= end {
                    break;
                }
                payload_seed = payload_seed.wrapping_add(0x9E37);
                if entry.alive && rng.gen_bool(0.9) {
                    let up = rng.gen_range(350..1_400);
                    let down = rng.gen_range(250..1_200);
                    emit_connection(
                        sink,
                        &ConnSpec::tcp(
                            t,
                            bot_ip,
                            32_768 + (payload_seed % 28_000) as u16,
                            entry.ip,
                            NUGACHE_PORT,
                        )
                        .outcome(ConnOutcome::Established {
                            bytes_up: up,
                            bytes_down: down,
                        })
                        .duration(SimDuration::from_secs_f64(rng.gen_range(0.5..4.0)))
                        .payload(build::opaque(payload_seed).as_bytes()),
                    );
                } else {
                    emit_connection(
                        sink,
                        &ConnSpec::tcp(
                            t,
                            bot_ip,
                            32_768 + (payload_seed % 28_000) as u16,
                            entry.ip,
                            NUGACHE_PORT,
                        )
                        .outcome(ConnOutcome::NoAnswer),
                    );
                }
                // Machine timer: the class interval with millisecond skew.
                let skew = rng.gen_range(-400.0..400.0) / 1000.0;
                t += SimDuration::from_secs_f64((entry.timer_class + skew).max(1.0));
            }
        }
    }
}

/// Runs the Nugache honeynet capture. Deterministic in (`cfg`, `seed`).
pub fn generate_nugache_trace(cfg: &NugacheConfig, seed: u64) -> BotTrace {
    assert!(
        cfg.n_bots > 0 && cfg.peer_pool >= cfg.peer_list_range.1,
        "pool smaller than lists"
    );
    let mut master = rng::derive(seed, "nugache-trace");

    // Global peer pool with per-peer liveness (shared across bots: dead
    // peers are dead for everyone).
    let pool: Vec<PeerEntry> = (0..cfg.peer_pool)
        .map(|i| {
            let ip = Ipv4Addr::new(
                96 + (i / 65536) as u8,
                ((i / 256) % 256) as u8,
                (i % 256) as u8,
                (31 + i % 200) as u8,
            );
            PeerEntry {
                ip,
                alive: master.gen_bool(cfg.peer_alive_prob),
                timer_class: cfg.timer_classes[i % cfg.timer_classes.len()],
            }
        })
        .collect();

    let mut bot_ips = Vec::new();
    let mut argus = ArgusAggregator::default();
    for b in 0..cfg.n_bots {
        let bot_ip = Ipv4Addr::new(172, 16, 1, (b + 1) as u8);
        bot_ips.push(bot_ip);
        let mut rng_b = rng::derive_indexed(seed, "nugache-bot", b as u64);
        let list_len = rng_b.gen_range(cfg.peer_list_range.0..=cfg.peer_list_range.1);
        let list: Vec<PeerEntry> = pool
            .choose_multiple(&mut rng_b, list_len)
            .copied()
            .collect();
        let activity = if rng_b.gen_bool(cfg.strong_frac) {
            rng_b.gen_range(cfg.strong_activity.0..cfg.strong_activity.1)
        } else {
            rng_b.gen_range(cfg.weak_activity.0..cfg.weak_activity.1)
        };
        bot_day(cfg, &mut argus, bot_ip, &list, activity, &mut rng_b);
    }

    let flows = argus.finish(SimTime::ZERO + cfg.duration + SimDuration::from_secs(120));
    split_by_bot(&flows, &bot_ips, BotFamily::Nugache, cfg.duration)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NugacheConfig {
        NugacheConfig {
            n_bots: 30,
            ..NugacheConfig::default()
        }
    }

    #[test]
    fn most_bots_exceed_65_percent_failed() {
        let trace = generate_nugache_trace(&cfg(), 1);
        let mut above = 0;
        let mut counted = 0;
        for bot in &trace.bots {
            let initiated: Vec<_> = bot.flows.iter().filter(|f| f.src == bot.ip).collect();
            if initiated.len() < 10 {
                continue;
            }
            counted += 1;
            let failed = initiated.iter().filter(|f| f.is_failed()).count();
            if failed as f64 / initiated.len() as f64 > 0.65 {
                above += 1;
            }
        }
        assert!(counted >= 15);
        assert!(
            above as f64 > 0.6 * counted as f64,
            "only {above}/{counted} bots above 65% failed"
        );
    }

    #[test]
    fn activity_levels_are_heavy_tailed() {
        let trace = generate_nugache_trace(&cfg(), 2);
        let mut counts = trace.flow_counts();
        counts.sort_unstable();
        let min = counts[0];
        let max = *counts.last().unwrap();
        assert!(max > min * 20, "activity spread too small: {min}..{max}");
    }

    #[test]
    fn payloads_never_match_signatures() {
        let trace = generate_nugache_trace(&cfg(), 3);
        for bot in &trace.bots {
            for f in &bot.flows {
                assert_eq!(pw_flow::signatures::classify_flow(f), None);
            }
        }
    }

    #[test]
    fn timer_classes_visible_in_interstitials() {
        let trace = generate_nugache_trace(
            &NugacheConfig {
                n_bots: 10,
                ..Default::default()
            },
            4,
        );
        // Pool per-destination gaps across all bots; count how many fall
        // near a timer class.
        let mut near = 0usize;
        let mut total = 0usize;
        for bot in &trace.bots {
            let mut per_dest: std::collections::HashMap<Ipv4Addr, Vec<SimTime>> =
                Default::default();
            for f in &bot.flows {
                if let Some(p) = f.peer_of(bot.ip) {
                    per_dest.entry(p).or_default().push(f.start);
                }
            }
            for times in per_dest.values_mut() {
                times.sort();
                for w in times.windows(2) {
                    let gap = (w[1] - w[0]).as_secs_f64();
                    if gap < 120.0 {
                        total += 1;
                        if [10.0, 25.0, 50.0].iter().any(|c| (gap - c).abs() < 1.5) {
                            near += 1;
                        }
                    }
                }
            }
        }
        assert!(total > 100);
        assert!(
            near as f64 > 0.6 * total as f64,
            "only {near}/{total} short gaps near timer classes"
        );
    }

    #[test]
    fn small_flows_low_volume() {
        let trace = generate_nugache_trace(&cfg(), 5);
        for bot in trace.bots.iter().filter(|b| b.flows.len() > 20) {
            let avg = bot
                .flows
                .iter()
                .map(|f| f.bytes_uploaded_by(bot.ip).unwrap_or(0))
                .sum::<u64>() as f64
                / bot.flows.len() as f64;
            assert!(avg < 2_000.0, "avg upload per flow {avg}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate_nugache_trace(&cfg(), 9),
            generate_nugache_trace(&cfg(), 9)
        );
    }
}
