//! One benchmark per reproduced evaluation artefact: how long each
//! figure's computation takes over a bench-scale day (generation included
//! once in the fixture, excluded from the measurement).
//!
//! Together with `pw-repro`'s binaries (which regenerate the figures at
//! paper scale), this gives the per-figure performance map DESIGN.md §3
//! promises.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pw_analysis::Ecdf;
use pw_bench::bench_day;
use pw_botnet::{
    apply_evasion, generate_nugache_trace, generate_storm_trace, EvasionConfig, NugacheConfig,
    StormConfig,
};
use pw_detect::{find_plotters_from_table, FindPlottersConfig};
use pw_netsim::SimDuration;

fn bench_figure_kernels(c: &mut Criterion) {
    let fixture = bench_day();
    let profiles = &fixture.profiles;

    // Figures 1 and 5 are per-host CDFs over extracted features.
    c.bench_function("fig01_volume_cdf_kernel", |b| {
        b.iter(|| {
            let vals: Vec<f64> = profiles
                .profiles()
                .iter()
                .filter_map(pw_detect::HostProfile::avg_upload_per_flow)
                .collect();
            Ecdf::new(black_box(vals))
        })
    });
    c.bench_function("fig05_failed_cdf_kernel", |b| {
        b.iter(|| {
            let vals: Vec<f64> = profiles
                .profiles()
                .iter()
                .filter_map(pw_detect::HostProfile::failed_rate)
                .collect();
            Ecdf::new(black_box(vals))
        })
    });

    // Figure 2/3 kernels: churn metric and FD histograms per host.
    c.bench_function("fig02_churn_kernel", |b| {
        b.iter(|| {
            profiles
                .profiles()
                .iter()
                .filter_map(pw_detect::HostProfile::new_ip_fraction)
                .sum::<f64>()
        })
    });
    c.bench_function("fig03_interstitial_histograms", |b| {
        b.iter(|| {
            profiles
                .profiles()
                .iter()
                .filter(|p| p.has_interstitials())
                .fold(0usize, |acc, p| {
                    black_box(
                        pw_analysis::Histogram::freedman_diaconis(p.interstitials()).unwrap(),
                    );
                    acc + 1
                })
        })
    });

    // Figures 6–9 all reduce to pipeline invocations.
    let mut group = c.benchmark_group("fig09_pipeline_day");
    group.sample_size(10);
    group.bench_function("one_day", |b| {
        b.iter(|| find_plotters_from_table(black_box(profiles), &FindPlottersConfig::default()))
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("storm_6bots_6h", |b| {
        b.iter(|| {
            generate_storm_trace(
                &StormConfig {
                    n_bots: 6,
                    external_population: 80,
                    duration: SimDuration::from_hours(6),
                    ..StormConfig::default()
                },
                black_box(1),
            )
        })
    });
    group.bench_function("nugache_15bots_6h", |b| {
        b.iter(|| {
            generate_nugache_trace(
                &NugacheConfig {
                    n_bots: 15,
                    duration: SimDuration::from_hours(6),
                    ..NugacheConfig::default()
                },
                black_box(2),
            )
        })
    });
    group.finish();
}

fn bench_evasion_rewrite(c: &mut Criterion) {
    // Figures 11/12 kernel: the §VI trace rewrites.
    let trace = generate_storm_trace(
        &StormConfig {
            n_bots: 6,
            external_population: 80,
            duration: SimDuration::from_hours(6),
            ..StormConfig::default()
        },
        3,
    );
    let cfg = EvasionConfig {
        volume_multiplier: 4.0,
        new_peer_multiplier: 1.5,
        jitter: Some(SimDuration::from_mins(10)),
    };
    let mut group = c.benchmark_group("fig12_evasion_rewrite");
    group.sample_size(20);
    group.bench_function("all_knobs", |b| {
        b.iter(|| apply_evasion(black_box(&trace), &cfg, 9))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_figure_kernels,
    bench_trace_generation,
    bench_evasion_rewrite
);
criterion_main!(benches);
