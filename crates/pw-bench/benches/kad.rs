//! Kademlia-substrate benchmarks: routing-table operations and full
//! iterative lookups through a simulated overlay.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pw_kad::{
    Contact, KadConfig, KadEvent, KadSim, LookupGoal, NodeHandle, NodeId, RoutingTable, WireKind,
};
use pw_netsim::{rng, Engine, SimTime};
use rand::Rng;
use std::net::Ipv4Addr;

fn bench_routing_table(c: &mut Criterion) {
    let mut r = rng::derive(1, "bench-rt");
    let me = NodeId::random(&mut r);
    let contacts: Vec<Contact> = (0..10_000)
        .map(|i| Contact {
            id: NodeId::random(&mut r),
            ip: Ipv4Addr::new(1, 2, 3, 4),
            port: 4672,
            handle: NodeHandle::from_index(i),
        })
        .collect();
    c.bench_function("routing_table_insert_10k", |b| {
        b.iter(|| {
            let mut t = RoutingTable::new(me, 8);
            for &ct in &contacts {
                t.update(black_box(ct));
            }
            t.len()
        })
    });
    let mut t = RoutingTable::new(me, 8);
    for &ct in &contacts {
        t.update(ct);
    }
    let target = NodeId::random(&mut r);
    c.bench_function("routing_table_closest", |b| {
        b.iter(|| t.closest(black_box(target), 8))
    });
}

fn build_overlay(n: usize) -> (KadSim, Vec<pw_kad::NodeHandle>) {
    let mut sim = KadSim::new(KadConfig::default(), 42);
    let mut r = rng::derive(2, "bench-overlay");
    let mut handles = Vec::new();
    for i in 0..n {
        let ip = Ipv4Addr::new(60, (i / 250) as u8, (i % 250) as u8, 1);
        let h = sim.add_node(NodeId::random(&mut r), ip, 7871, WireKind::Overnet);
        sim.set_online(h, true);
        if r.gen_bool(0.2) {
            sim.set_responsive(h, false);
        }
        handles.push(h);
    }
    for (i, &h) in handles.iter().enumerate() {
        let seeds: Vec<_> = (1..=5).map(|d| handles[(i + d * 13) % n]).collect();
        sim.bootstrap(h, &seeds);
    }
    (sim, handles)
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("kad_lookup");
    group.sample_size(20);
    for n in [100usize, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (sim0, handles) = build_overlay(n);
            let mut i = 0u64;
            b.iter(|| {
                // Clone the overlay so each lookup starts from identical state.
                let mut sim = sim0_clone(&sim0, n);
                let _ = &sim0;
                let mut engine: Engine<KadEvent> = Engine::new();
                let mut packets: Vec<pw_flow::Packet> = Vec::new();
                i += 1;
                let target = NodeId::hash_of(format!("bench-key-{i}").as_bytes());
                sim.start_lookup(
                    &mut engine,
                    &mut packets,
                    handles[0],
                    target,
                    LookupGoal::FindNode,
                );
                engine.run_until(SimTime::from_secs(60), |eng, ev| {
                    sim.handle(eng, &mut packets, ev)
                });
                black_box(packets.len())
            })
        });
    }
    group.finish();
}

/// Rebuilds an identical overlay (KadSim holds RNG state, so a fresh build
/// is the cheap way to get a clean, deterministic starting point).
fn sim0_clone(_template: &KadSim, n: usize) -> KadSim {
    build_overlay(n).0
}

criterion_group!(benches, bench_routing_table, bench_lookup);
criterion_main!(benches);
