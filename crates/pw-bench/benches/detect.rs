//! Detector benchmarks: feature extraction, each test, the full pipeline.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pw_bench::bench_day;
use pw_detect::{
    extract_profiles_table, find_plotters_from_table, initial_reduction_view, theta_churn_view,
    theta_hm_view, theta_vol_view, FindPlottersConfig, HmOptions, HostMask, HostProfile,
    ProfileRepr, ProfileTable, ProfileView, Threshold,
};
use pw_flow::FlowTable;

fn bench_detect(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let table = FlowTable::from_records(&fixture.flows);

    let mut group = c.benchmark_group("detect");
    group.sample_size(20);
    group.throughput(Throughput::Elements(fixture.flows.len() as u64));
    group.bench_function("extract_profiles", |b| {
        b.iter(|| extract_profiles_table(black_box(&table), |ip| day.is_internal(ip)))
    });
    group.finish();

    let profiles = &fixture.profiles;
    let view = ProfileView::from_table(profiles);
    let (reduced, _) = initial_reduction_view(&view);
    c.bench_function("initial_reduction", |b| {
        b.iter(|| initial_reduction_view(black_box(&view)))
    });
    c.bench_function("theta_vol", |b| {
        b.iter(|| theta_vol_view(black_box(&view), &reduced, Threshold::Percentile(50.0), 1))
    });
    c.bench_function("theta_churn", |b| {
        b.iter(|| theta_churn_view(black_box(&view), &reduced, Threshold::Percentile(50.0), 1))
    });

    let (s_vol, _) =
        theta_vol_view(&view, &reduced, Threshold::Percentile(50.0), 1).expect("tau resolves");
    let (s_churn, _) =
        theta_churn_view(&view, &reduced, Threshold::Percentile(50.0), 1).expect("tau resolves");
    let union = s_vol.union(&s_churn);
    let mut group = c.benchmark_group("theta_hm");
    group.sample_size(10);
    group.bench_function("clustered", |b| {
        b.iter(|| {
            theta_hm_view(
                black_box(&view),
                &union,
                Threshold::Percentile(70.0),
                0.05,
                &HmOptions::default(),
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("find_plotters_full", |b| {
        b.iter(|| find_plotters_from_table(black_box(profiles), &FindPlottersConfig::default()))
    });
    group.finish();
}

/// Synthesizes `n` hosts with non-empty interstitial samples: a quarter
/// periodic bot-like hosts in a handful of timer families, the rest
/// heavy-tailed human-ish, so `θ_hm` sees realistic cluster structure at
/// every scale.
fn synth_hm_hosts(n: usize) -> ProfileTable {
    let mut profiles = HashMap::new();
    for k in 0..n {
        let ip = Ipv4Addr::new(10, (k >> 8) as u8, (k & 0xff) as u8, 1);
        let interstitials: Vec<f64> = if k % 4 == 0 {
            // Bot-like: tight periodic timer, one of 7 families.
            let base = 60.0 * ((k % 7) + 1) as f64;
            (0..200)
                .map(|i: u64| base + ((i * 7 + k as u64) % 5) as f64 * 0.5)
                .collect()
        } else {
            // Human-ish: irregular heavy-tailed gaps, different per host.
            (0..200)
                .map(|i: u64| {
                    let x = ((i * 2654435761 + k as u64 * 977) % 10_000) as f64 / 10_000.0;
                    10.0 + (k % 13) as f64 * 3.0 + 5_000.0 * x * x * x
                })
                .collect()
        };
        profiles.insert(
            ip,
            HostProfile {
                ip,
                flows_involving: 200,
                bytes_uploaded: 20_000,
                initiated: 200,
                initiated_failed: 40,
                first_activity: None,
                repr: ProfileRepr::Exact {
                    first_contact: Default::default(),
                    interstitials,
                },
            },
        );
    }
    ProfileTable::from_map(profiles)
}

/// `θ_hm` scaling: host count × worker threads over the full hot path
/// (histograms, pairwise EMD distance matrix, linkage, cut).
fn bench_theta_hm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("theta_hm");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let profiles = synth_hm_hosts(n);
        let view = ProfileView::from_table(&profiles);
        let s = HostMask::full(view.len());
        for &threads in &[1usize, 4, 8] {
            let opts = HmOptions {
                threads,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), threads),
                &(&view, &s),
                |b, (view, s)| {
                    b.iter(|| {
                        theta_hm_view(black_box(view), s, Threshold::Percentile(70.0), 0.05, &opts)
                    })
                },
            );
        }
    }
    group.finish();
}

/// Sub-quadratic `θ_hm`: the bucketed mode forced on (`exact_below = 0`)
/// against the exact path at the same host counts, so the crossover and
/// the constant factors of embedding + k-means + per-bucket linkage are
/// visible at bench time.
fn bench_theta_hm_bucketed(c: &mut Criterion) {
    use pw_detect::{BucketedHmParams, ThetaHmConfig, ThetaHmMode};
    let mut group = c.benchmark_group("theta_hm_bucketed");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        let profiles = synth_hm_hosts(n);
        let view = ProfileView::from_table(&profiles);
        let s = HostMask::full(view.len());
        for &threads in &[1usize, 8] {
            let opts = HmOptions {
                threads,
                theta: ThetaHmConfig {
                    mode: ThetaHmMode::Bucketed(BucketedHmParams {
                        exact_below: 0,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), threads),
                &(&view, &s),
                |b, (view, s)| {
                    b.iter(|| {
                        theta_hm_view(black_box(view), s, Threshold::Percentile(70.0), 0.05, &opts)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_tdg(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let cfg = pw_detect::TdgConfig::default();
    let mut group = c.benchmark_group("tdg");
    group.sample_size(20);
    group.throughput(Throughput::Elements(fixture.flows.len() as u64));
    group.bench_function("scan", |b| {
        b.iter(|| pw_detect::tdg_scan(black_box(&fixture.flows), |ip| day.is_internal(ip), &cfg))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_detect,
    bench_theta_hm_scaling,
    bench_theta_hm_bucketed,
    bench_tdg
);
criterion_main!(benches);
