//! Detector benchmarks: feature extraction, each test, the full pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pw_bench::bench_day;
use pw_detect::{
    extract_profiles, find_plotters_from_profiles, initial_reduction, theta_churn, theta_hm,
    theta_vol, FindPlottersConfig, Threshold,
};

fn bench_detect(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;

    let mut group = c.benchmark_group("detect");
    group.sample_size(20);
    group.throughput(Throughput::Elements(fixture.flows.len() as u64));
    group.bench_function("extract_profiles", |b| {
        b.iter(|| extract_profiles(black_box(&fixture.flows), |ip| day.is_internal(ip)))
    });
    group.finish();

    let profiles = &fixture.profiles;
    let (reduced, _) = initial_reduction(profiles);
    c.bench_function("initial_reduction", |b| {
        b.iter(|| initial_reduction(black_box(profiles)))
    });
    c.bench_function("theta_vol", |b| {
        b.iter(|| theta_vol(black_box(profiles), &reduced, Threshold::Percentile(50.0)))
    });
    c.bench_function("theta_churn", |b| {
        b.iter(|| theta_churn(black_box(profiles), &reduced, Threshold::Percentile(50.0)))
    });

    let (s_vol, _) = theta_vol(profiles, &reduced, Threshold::Percentile(50.0));
    let (s_churn, _) = theta_churn(profiles, &reduced, Threshold::Percentile(50.0));
    let union: std::collections::HashSet<_> = s_vol.union(&s_churn).copied().collect();
    let mut group = c.benchmark_group("theta_hm");
    group.sample_size(10);
    group.bench_function("clustered", |b| {
        b.iter(|| {
            theta_hm(
                black_box(profiles),
                &union,
                Threshold::Percentile(70.0),
                0.05,
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("find_plotters_full", |b| {
        b.iter(|| find_plotters_from_profiles(black_box(profiles), &FindPlottersConfig::default()))
    });
    group.finish();
}

fn bench_tdg(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let cfg = pw_detect::TdgConfig::default();
    let mut group = c.benchmark_group("tdg");
    group.sample_size(20);
    group.throughput(Throughput::Elements(fixture.flows.len() as u64));
    group.bench_function("scan", |b| {
        b.iter(|| pw_detect::tdg_scan(black_box(&fixture.flows), |ip| day.is_internal(ip), &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_detect, bench_tdg);
criterion_main!(benches);
