//! Detector benchmarks: feature extraction, each test, the full pipeline.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pw_bench::bench_day;
use pw_detect::{
    extract_profiles, find_plotters_from_profiles, initial_reduction, theta_churn, theta_hm,
    theta_hm_with_options, theta_vol, FindPlottersConfig, HmOptions, HostProfile, Threshold,
};

fn bench_detect(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;

    let mut group = c.benchmark_group("detect");
    group.sample_size(20);
    group.throughput(Throughput::Elements(fixture.flows.len() as u64));
    group.bench_function("extract_profiles", |b| {
        b.iter(|| extract_profiles(black_box(&fixture.flows), |ip| day.is_internal(ip)))
    });
    group.finish();

    let profiles = &fixture.profiles;
    let (reduced, _) = initial_reduction(profiles);
    c.bench_function("initial_reduction", |b| {
        b.iter(|| initial_reduction(black_box(profiles)))
    });
    c.bench_function("theta_vol", |b| {
        b.iter(|| theta_vol(black_box(profiles), &reduced, Threshold::Percentile(50.0)))
    });
    c.bench_function("theta_churn", |b| {
        b.iter(|| theta_churn(black_box(profiles), &reduced, Threshold::Percentile(50.0)))
    });

    let (s_vol, _) = theta_vol(profiles, &reduced, Threshold::Percentile(50.0));
    let (s_churn, _) = theta_churn(profiles, &reduced, Threshold::Percentile(50.0));
    let union: std::collections::HashSet<_> = s_vol.union(&s_churn).copied().collect();
    let mut group = c.benchmark_group("theta_hm");
    group.sample_size(10);
    group.bench_function("clustered", |b| {
        b.iter(|| {
            theta_hm(
                black_box(profiles),
                &union,
                Threshold::Percentile(70.0),
                0.05,
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("find_plotters_full", |b| {
        b.iter(|| find_plotters_from_profiles(black_box(profiles), &FindPlottersConfig::default()))
    });
    group.finish();
}

/// Synthesizes `n` hosts with non-empty interstitial samples: a quarter
/// periodic bot-like hosts in a handful of timer families, the rest
/// heavy-tailed human-ish, so `θ_hm` sees realistic cluster structure at
/// every scale.
fn synth_hm_hosts(n: usize) -> (HashMap<Ipv4Addr, HostProfile>, HashSet<Ipv4Addr>) {
    let mut profiles = HashMap::new();
    let mut s = HashSet::new();
    for k in 0..n {
        let ip = Ipv4Addr::new(10, (k >> 8) as u8, (k & 0xff) as u8, 1);
        let interstitials: Vec<f64> = if k % 4 == 0 {
            // Bot-like: tight periodic timer, one of 7 families.
            let base = 60.0 * ((k % 7) + 1) as f64;
            (0..200)
                .map(|i: u64| base + ((i * 7 + k as u64) % 5) as f64 * 0.5)
                .collect()
        } else {
            // Human-ish: irregular heavy-tailed gaps, different per host.
            (0..200)
                .map(|i: u64| {
                    let x = ((i * 2654435761 + k as u64 * 977) % 10_000) as f64 / 10_000.0;
                    10.0 + (k % 13) as f64 * 3.0 + 5_000.0 * x * x * x
                })
                .collect()
        };
        profiles.insert(
            ip,
            HostProfile {
                ip,
                flows_involving: 200,
                bytes_uploaded: 20_000,
                initiated: 200,
                initiated_failed: 40,
                first_activity: None,
                first_contact: Default::default(),
                interstitials,
            },
        );
        s.insert(ip);
    }
    (profiles, s)
}

/// `θ_hm` scaling: host count × worker threads over the full hot path
/// (histograms, pairwise EMD distance matrix, linkage, cut).
fn bench_theta_hm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("theta_hm");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let (profiles, s) = synth_hm_hosts(n);
        for &threads in &[1usize, 4, 8] {
            let opts = HmOptions {
                threads,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), threads),
                &(&profiles, &s),
                |b, (profiles, s)| {
                    b.iter(|| {
                        theta_hm_with_options(
                            black_box(profiles),
                            s,
                            Threshold::Percentile(70.0),
                            0.05,
                            &opts,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_tdg(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let cfg = pw_detect::TdgConfig::default();
    let mut group = c.benchmark_group("tdg");
    group.sample_size(20);
    group.throughput(Throughput::Elements(fixture.flows.len() as u64));
    group.bench_function("scan", |b| {
        b.iter(|| pw_detect::tdg_scan(black_box(&fixture.flows), |ip| day.is_internal(ip), &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_detect, bench_theta_hm_scaling, bench_tdg);
criterion_main!(benches);
