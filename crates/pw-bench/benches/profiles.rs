//! Profile-extraction before/after: the pre-refactor HashMap-per-flow
//! path (frozen here as a baseline) against the interned columnar
//! [`FlowTable`] path, plus batch and streaming detection throughput on
//! the same seeded campus day.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pw_bench::bench_day;
use pw_detect::stream::{DetectionEngine, EngineConfig};
use pw_detect::{
    extract_profiles_table, extract_profiles_table_par, extract_profiles_table_par_tier,
    extract_profiles_table_tier, find_plotters_from_table, internal_endpoint, FindPlottersConfig,
    HostProfile, ProfileAccumulator, ProfileRepr, ProfileTier,
};
use pw_flow::{FlowRecord, FlowTable};
use pw_netsim::{SimDuration, SimTime};

/// The pre-refactor extraction loop, kept as the "before" side of the
/// comparison: one address-keyed map probe per flow, two internality
/// checks per flow, nothing shared with other pipeline stages.
#[derive(Default)]
struct LegacyAcc {
    flows_involving: u64,
    bytes_uploaded: u64,
    initiated: u64,
    initiated_failed: u64,
    first_activity: Option<SimTime>,
    first_contact: BTreeMap<Ipv4Addr, SimTime>,
    interstitials: Vec<f64>,
}

fn legacy_extract_profiles<F>(
    flows: &[FlowRecord],
    is_internal: F,
) -> HashMap<Ipv4Addr, HostProfile>
where
    F: Fn(Ipv4Addr) -> bool,
{
    let mut ordered: Vec<&FlowRecord> = flows.iter().collect();
    ordered.sort_by_key(|f| (f.start, f.src, f.dst, f.sport, f.dport));
    let mut accs: HashMap<Ipv4Addr, LegacyAcc> = HashMap::new();
    let mut last_to: HashMap<Ipv4Addr, HashMap<Ipv4Addr, SimTime>> = HashMap::new();
    for f in ordered {
        let Some(host) = internal_endpoint(f, &is_internal) else {
            continue;
        };
        let p = accs.entry(host).or_default();
        p.flows_involving += 1;
        p.bytes_uploaded += f.bytes_uploaded_by(host).unwrap_or(0);
        if f.src == host {
            p.initiated += 1;
            if f.is_failed() {
                p.initiated_failed += 1;
            }
            if p.first_activity.is_none() {
                p.first_activity = Some(f.start);
            }
            p.first_contact.entry(f.dst).or_insert(f.start);
            if let Some(prev) = last_to.entry(host).or_default().insert(f.dst, f.start) {
                p.interstitials.push((f.start - prev).as_secs_f64());
            }
        }
    }
    accs.into_iter()
        .map(|(ip, a)| {
            (
                ip,
                HostProfile {
                    ip,
                    flows_involving: a.flows_involving,
                    bytes_uploaded: a.bytes_uploaded,
                    initiated: a.initiated,
                    initiated_failed: a.initiated_failed,
                    first_activity: a.first_activity,
                    repr: ProfileRepr::Exact {
                        first_contact: a.first_contact,
                        interstitials: a.interstitials,
                    },
                },
            )
        })
        .collect()
}

fn bench_extraction(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let flows = &fixture.flows;
    let table = FlowTable::from_records(flows);

    // Keep the frozen baseline honest: it must still produce exactly what
    // the refactored path produces.
    assert_eq!(
        legacy_extract_profiles(flows, |ip| day.is_internal(ip)),
        extract_profiles_table(&table, |ip| day.is_internal(ip)).to_map(),
        "legacy baseline diverged from the table path"
    );

    let mut group = c.benchmark_group("profiles/extract");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("legacy_hashmap", |b| {
        b.iter(|| legacy_extract_profiles(black_box(flows), |ip| day.is_internal(ip)))
    });
    group.bench_function("table_from_records", |b| {
        b.iter(|| {
            let t = FlowTable::from_records(black_box(flows));
            extract_profiles_table(&t, |ip| day.is_internal(ip))
        })
    });
    group.bench_function("table_prebuilt", |b| {
        b.iter(|| extract_profiles_table(black_box(&table), |ip| day.is_internal(ip)))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("table_sharded", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    extract_profiles_table_par(black_box(&table), |ip| day.is_internal(ip), t)
                })
            },
        );
    }
    group.finish();
}

/// Accumulates `n` synthetic hosts at the sketched tier; every 97th host
/// is a heavy hitter whose fan-out forces both sketches dense, the rest
/// stay in the sparse-exact range. Mirrors the `sketch_accuracy` harness
/// population so BENCH_N.json tracks the same workload it validates.
fn synth_sketched_hosts(n: usize, tier: ProfileTier) -> usize {
    let mut acc = ProfileAccumulator::with_tier(tier);
    for k in 0..n {
        let host = Ipv4Addr::new(10, (k >> 16) as u8, (k >> 8) as u8, k as u8);
        let peers: u32 = if k % 97 == 0 { 512 } else { 8 };
        for p in 0..peers {
            let v = (k as u32)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(p.wrapping_mul(0x85EB_CA6B));
            let f = FlowRecord {
                start: SimTime::from_millis(u64::from(p) * 500),
                end: SimTime::from_millis(u64::from(p) * 500 + 100),
                src: host,
                sport: 40_000,
                dst: Ipv4Addr::new(100, (v >> 16) as u8, (v >> 8) as u8, v as u8),
                dport: 80,
                proto: pw_flow::Proto::Tcp,
                src_pkts: 2,
                src_bytes: 900,
                dst_pkts: 1,
                dst_bytes: 64,
                state: pw_flow::FlowState::Established,
                payload: pw_flow::Payload::empty(),
            };
            acc.absorb(&f, host);
        }
    }
    acc.finish()
        .profiles()
        .iter()
        .map(HostProfile::estimated_bytes)
        .sum()
}

/// The sketched tier end to end: per-day extraction (serial and sharded)
/// and large-n accumulation with dense heavy hitters, in both tiers so
/// the throughput cost of sketching is directly visible.
fn bench_sketched_extraction(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let table = FlowTable::from_records(&fixture.flows);

    let mut group = c.benchmark_group("profiles_sketched");
    group.sample_size(10);
    group.throughput(Throughput::Elements(fixture.flows.len() as u64));
    group.bench_function("extract_day", |b| {
        b.iter(|| {
            extract_profiles_table_tier(
                black_box(&table),
                |ip| day.is_internal(ip),
                ProfileTier::Sketched,
            )
        })
    });
    for threads in [4usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("extract_day_sharded", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    extract_profiles_table_par_tier(
                        black_box(&table),
                        |ip| day.is_internal(ip),
                        ProfileTier::Sketched,
                        t,
                    )
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("profiles_sketched/accumulate");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        group.throughput(Throughput::Elements((n + n / 97 * 504) as u64 * 8));
        for tier in [ProfileTier::Exact, ProfileTier::Sketched] {
            group.bench_with_input(BenchmarkId::new(tier.name(), n), &n, |b, &n| {
                b.iter(|| synth_sketched_hosts(black_box(n), tier))
            });
        }
    }
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let flows = &fixture.flows;
    let table = FlowTable::from_records(flows);
    let profile_table = extract_profiles_table(&table, |ip| day.is_internal(ip));

    let mut group = c.benchmark_group("profiles/batch_detect");
    group.sample_size(10);
    group.bench_function("from_profile_table", |b| {
        b.iter(|| {
            find_plotters_from_table(black_box(&profile_table), &FindPlottersConfig::default())
        })
    });
    group.finish();

    // Streaming throughput over the same day (hourly tumbling windows).
    let mut ordered = flows.clone();
    ordered.sort_by_key(|f| (f.start, f.src, f.dst, f.sport, f.dport));
    let mut group = c.benchmark_group("profiles/streaming_hourly");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ordered.len() as u64));
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let cfg = EngineConfig {
                    window: SimDuration::from_hours(1),
                    slide: SimDuration::from_hours(1),
                    lateness: SimDuration::from_mins(10),
                    threads: t,
                    ..Default::default()
                };
                let mut engine =
                    DetectionEngine::new(cfg, |ip| day.is_internal(ip)).expect("valid config");
                let mut reports = Vec::new();
                for f in black_box(&ordered) {
                    reports.extend(engine.push(*f).expect("in-order replay"));
                }
                reports.extend(engine.finish());
                reports
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_sketched_extraction,
    bench_detection
);
criterion_main!(benches);
