//! Profile-extraction before/after: the pre-refactor HashMap-per-flow
//! path (frozen here as a baseline) against the interned columnar
//! [`FlowTable`] path, plus batch and streaming detection throughput on
//! the same seeded campus day.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pw_bench::bench_day;
use pw_detect::stream::{DetectionEngine, EngineConfig};
use pw_detect::{
    extract_profiles_table, extract_profiles_table_par, find_plotters_from_table,
    internal_endpoint, FindPlottersConfig, HostProfile,
};
use pw_flow::{FlowRecord, FlowTable};
use pw_netsim::{SimDuration, SimTime};

/// The pre-refactor extraction loop, kept verbatim as the "before" side of
/// the comparison: one address-keyed map probe per flow, two internality
/// checks per flow, nothing shared with other pipeline stages.
fn legacy_extract_profiles<F>(
    flows: &[FlowRecord],
    is_internal: F,
) -> HashMap<Ipv4Addr, HostProfile>
where
    F: Fn(Ipv4Addr) -> bool,
{
    let mut ordered: Vec<&FlowRecord> = flows.iter().collect();
    ordered.sort_by_key(|f| (f.start, f.src, f.dst, f.sport, f.dport));
    let mut profiles: HashMap<Ipv4Addr, HostProfile> = HashMap::new();
    let mut last_to: HashMap<Ipv4Addr, HashMap<Ipv4Addr, SimTime>> = HashMap::new();
    for f in ordered {
        let Some(host) = internal_endpoint(f, &is_internal) else {
            continue;
        };
        let p = profiles.entry(host).or_insert_with(|| HostProfile {
            ip: host,
            flows_involving: 0,
            bytes_uploaded: 0,
            initiated: 0,
            initiated_failed: 0,
            first_activity: None,
            first_contact: BTreeMap::new(),
            interstitials: Vec::new(),
        });
        p.flows_involving += 1;
        p.bytes_uploaded += f.bytes_uploaded_by(host).unwrap_or(0);
        if f.src == host {
            p.initiated += 1;
            if f.is_failed() {
                p.initiated_failed += 1;
            }
            if p.first_activity.is_none() {
                p.first_activity = Some(f.start);
            }
            p.first_contact.entry(f.dst).or_insert(f.start);
            if let Some(prev) = last_to.entry(host).or_default().insert(f.dst, f.start) {
                p.interstitials.push((f.start - prev).as_secs_f64());
            }
        }
    }
    profiles
}

fn bench_extraction(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let flows = &fixture.flows;
    let table = FlowTable::from_records(flows);

    // Keep the frozen baseline honest: it must still produce exactly what
    // the refactored path produces.
    assert_eq!(
        legacy_extract_profiles(flows, |ip| day.is_internal(ip)),
        extract_profiles_table(&table, |ip| day.is_internal(ip)).to_map(),
        "legacy baseline diverged from the table path"
    );

    let mut group = c.benchmark_group("profiles/extract");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("legacy_hashmap", |b| {
        b.iter(|| legacy_extract_profiles(black_box(flows), |ip| day.is_internal(ip)))
    });
    group.bench_function("table_from_records", |b| {
        b.iter(|| {
            let t = FlowTable::from_records(black_box(flows));
            extract_profiles_table(&t, |ip| day.is_internal(ip))
        })
    });
    group.bench_function("table_prebuilt", |b| {
        b.iter(|| extract_profiles_table(black_box(&table), |ip| day.is_internal(ip)))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("table_sharded", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    extract_profiles_table_par(black_box(&table), |ip| day.is_internal(ip), t)
                })
            },
        );
    }
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let flows = &fixture.flows;
    let table = FlowTable::from_records(flows);
    let profile_table = extract_profiles_table(&table, |ip| day.is_internal(ip));

    let mut group = c.benchmark_group("profiles/batch_detect");
    group.sample_size(10);
    group.bench_function("from_profile_table", |b| {
        b.iter(|| {
            find_plotters_from_table(black_box(&profile_table), &FindPlottersConfig::default())
        })
    });
    group.finish();

    // Streaming throughput over the same day (hourly tumbling windows).
    let mut ordered = flows.clone();
    ordered.sort_by_key(|f| (f.start, f.src, f.dst, f.sport, f.dport));
    let mut group = c.benchmark_group("profiles/streaming_hourly");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ordered.len() as u64));
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let cfg = EngineConfig {
                    window: SimDuration::from_hours(1),
                    slide: SimDuration::from_hours(1),
                    lateness: SimDuration::from_mins(10),
                    threads: t,
                    ..Default::default()
                };
                let mut engine =
                    DetectionEngine::new(cfg, |ip| day.is_internal(ip)).expect("valid config");
                let mut reports = Vec::new();
                for f in black_box(&ordered) {
                    reports.extend(engine.push(*f).expect("in-order replay"));
                }
                reports.extend(engine.finish());
                reports
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extraction, bench_detection);
criterion_main!(benches);
