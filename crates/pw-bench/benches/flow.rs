//! Argus-substrate benchmarks: aggregation throughput and persistence.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pw_flow::synth::{emit_connection, ConnOutcome, ConnSpec};
use pw_flow::{ArgusAggregator, Packet, PacketSink};
use pw_netsim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

fn packet_script(conns: usize) -> Vec<Packet> {
    let mut pkts: Vec<Packet> = Vec::new();
    for i in 0..conns {
        let spec = ConnSpec::tcp(
            SimTime::from_millis(i as u64 * 50),
            Ipv4Addr::new(10, 1, (i / 250) as u8, (i % 250) as u8 + 1),
            40_000 + (i % 20_000) as u16,
            Ipv4Addr::new(93, 10, (i / 200 % 200) as u8, (i % 200) as u8 + 1),
            80,
        )
        .outcome(ConnOutcome::Established {
            bytes_up: 600,
            bytes_down: 30_000,
        })
        .duration(SimDuration::from_secs(2));
        emit_connection(&mut pkts, &spec);
    }
    pkts
}

fn bench_aggregation(c: &mut Criterion) {
    let pkts = packet_script(10_000);
    let mut group = c.benchmark_group("argus");
    group.throughput(Throughput::Elements(pkts.len() as u64));
    group.sample_size(20);
    group.bench_function("aggregate_10k_conns", |b| {
        b.iter(|| {
            let mut agg = ArgusAggregator::default();
            for p in &pkts {
                agg.emit(black_box(*p));
            }
            agg.finish(SimTime::from_hours(2))
        })
    });
    group.finish();
}

fn bench_csv(c: &mut Criterion) {
    let pkts = packet_script(5_000);
    let mut agg = ArgusAggregator::default();
    for p in &pkts {
        agg.emit(*p);
    }
    let flows = agg.finish(SimTime::from_hours(2));
    let mut buf = Vec::new();
    pw_flow::csvio::write_flows(&mut buf, &flows).unwrap();

    let mut group = c.benchmark_group("flow_csv");
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            pw_flow::csvio::write_flows(&mut out, black_box(&flows)).unwrap();
            out
        })
    });
    group.bench_function("read", |b| {
        b.iter(|| pw_flow::csvio::read_flows(black_box(buf.as_slice())).unwrap())
    });
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let payloads: Vec<&[u8]> = vec![
        b"GNUTELLA CONNECT/0.6\r\n",
        b"\x13BitTorrent protocol",
        b"GET /announce?info_hash=x HTTP/1.1",
        b"GET /index.html HTTP/1.1",
        b"\xe3\x20rest-of-frame",
        b"random human text with no signature at all.....",
    ];
    c.bench_function("classify_payload_6", |b| {
        b.iter(|| {
            payloads
                .iter()
                .filter(|p| pw_flow::signatures::classify_payload(black_box(p)).is_some())
                .count()
        })
    });
}

criterion_group!(benches, bench_aggregation, bench_csv, bench_signatures);
criterion_main!(benches);
