//! Statistics-kernel benchmarks: the inner loops of `θ_hm`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pw_analysis::{
    average_linkage, emd_cdf, emd_histograms, percentile, CdfRepr, DistanceMatrix, Histogram,
};

fn samples(n: usize, seed: u64) -> Vec<f64> {
    // Deterministic pseudo-random heavy-tailed samples.
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            10.0 + 5_000.0 * u * u * u
        })
        .collect()
}

fn bench_histograms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_histogram");
    for n in [100usize, 1_000, 10_000] {
        let xs = samples(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &xs, |b, xs| {
            b.iter(|| Histogram::freedman_diaconis(black_box(xs)).unwrap())
        });
    }
    group.finish();
}

fn bench_emd(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd");
    for n in [100usize, 1_000, 10_000] {
        let a = Histogram::freedman_diaconis(&samples(n, 1)).unwrap();
        let b_h = Histogram::freedman_diaconis(&samples(n, 2)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b_h), |b, (x, y)| {
            b.iter(|| emd_histograms(black_box(x), black_box(y)))
        });
    }
    group.finish();
}

fn bench_emd_kernel(c: &mut Criterion) {
    // The all-pairs hot path: digests are built once per host, so the
    // per-pair cost is just the alloc-free prefix-sum sweep.
    let mut group = c.benchmark_group("emd_kernel");
    for n in [100usize, 1_000, 10_000] {
        let a = CdfRepr::from_histogram(&Histogram::freedman_diaconis(&samples(n, 1)).unwrap());
        let b_r = CdfRepr::from_histogram(&Histogram::freedman_diaconis(&samples(n, 2)).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b_r), |b, (x, y)| {
            b.iter(|| emd_cdf(black_box(x), black_box(y)))
        });
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("average_linkage");
    group.sample_size(20);
    for n in [50usize, 200, 500] {
        let pos = samples(n, 3);
        let dm = DistanceMatrix::from_fn(n, |i, j| (pos[i] - pos[j]).abs());
        group.bench_with_input(BenchmarkId::from_parameter(n), &dm, |b, dm| {
            b.iter(|| average_linkage(black_box(dm)))
        });
    }
    group.finish();
}

fn bench_percentile(c: &mut Criterion) {
    let xs = samples(10_000, 9);
    c.bench_function("percentile_10k", |b| {
        b.iter(|| percentile(black_box(&xs), 50.0))
    });
}

criterion_group!(
    benches,
    bench_histograms,
    bench_emd,
    bench_emd_kernel,
    bench_clustering,
    bench_percentile
);
criterion_main!(benches);
