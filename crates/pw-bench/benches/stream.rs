//! Streaming-engine benchmarks: batch vs streaming, and the multi-core
//! speedup of host-sharded profile extraction and threshold tests.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pw_bench::bench_day;
use pw_detect::stream::{DetectionEngine, EngineConfig};
use pw_detect::{
    extract_profiles_table, extract_profiles_table_par, find_plotters_from_table,
    try_find_plotters, FindPlottersConfig,
};
use pw_flow::FlowTable;
use pw_netsim::SimDuration;

fn bench_parallel_speedup(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let mut flows = fixture.flows.clone();
    flows.sort_by_key(|f| (f.start, f.src, f.dst, f.sport, f.dport));
    let table = FlowTable::from_records(&flows);

    let mut group = c.benchmark_group("stream/extract_profiles");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| extract_profiles_table(black_box(&table), |ip| day.is_internal(ip)))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("sharded", threads), &threads, |b, &t| {
            b.iter(|| extract_profiles_table_par(black_box(&table), |ip| day.is_internal(ip), t))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("stream/full_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flows.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                try_find_plotters(
                    black_box(&flows),
                    |ip| day.is_internal(ip),
                    &FindPlottersConfig::default(),
                    t,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let fixture = bench_day();
    let day = &fixture.day;
    let mut flows = fixture.flows.clone();
    flows.sort_by_key(|f| (f.start, f.src, f.dst, f.sport, f.dport));

    // Batch baseline on pre-extracted profiles, for scale.
    let mut group = c.benchmark_group("stream/batch_baseline");
    group.sample_size(10);
    group.bench_function("find_plotters_from_table", |b| {
        b.iter(|| {
            find_plotters_from_table(black_box(&fixture.profiles), &FindPlottersConfig::default())
        })
    });
    group.finish();

    // The engine replaying the day in hourly tumbling windows.
    let mut group = c.benchmark_group("stream/engine_hourly");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flows.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let cfg = EngineConfig {
                    window: SimDuration::from_hours(1),
                    slide: SimDuration::from_hours(1),
                    lateness: SimDuration::from_mins(10),
                    threads: t,
                    ..Default::default()
                };
                let mut engine =
                    DetectionEngine::new(cfg, |ip| day.is_internal(ip)).expect("valid config");
                let mut reports = Vec::new();
                for f in black_box(&flows) {
                    reports.extend(engine.push(*f).expect("in-order replay"));
                }
                reports.extend(engine.finish());
                reports
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_speedup, bench_engine);
criterion_main!(benches);
