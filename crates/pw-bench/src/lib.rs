//! Benchmark-support crate: shared fixtures for the Criterion benches in
//! `benches/`.
//!
//! The benches cover every substrate (statistics kernels, Argus
//! aggregation, Kademlia lookups, feature extraction, the three tests and
//! the full pipeline) plus one bench per reproduced figure, so performance
//! regressions in any layer of the reproduction are visible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pw_botnet::{generate_nugache_trace, generate_storm_trace, NugacheConfig, StormConfig};
use pw_data::{build_day, overlay_bots, CampusConfig, DayDataset};
use pw_detect::{extract_profiles_table, ProfileTable};
use pw_flow::{FlowRecord, FlowTable};
use pw_netsim::SimDuration;

/// A bench-sized campus: big enough to exercise real code paths, small
/// enough for Criterion's sampling.
pub fn bench_campus() -> CampusConfig {
    CampusConfig {
        seed: 0xBE7C,
        n_background: 150,
        n_gnutella: 8,
        n_emule: 6,
        n_bittorrent: 10,
        catalog_files: 300,
        emule_kad_external: 60,
        bt_dht_external: 60,
        duration: SimDuration::from_hours(6),
        ..CampusConfig::default()
    }
}

/// One bench day with bots overlaid, plus extracted profiles.
pub struct BenchDay {
    /// The campus day.
    pub day: DayDataset,
    /// Overlaid flows (campus + bots).
    pub flows: Vec<FlowRecord>,
    /// Extracted per-host profiles.
    pub profiles: ProfileTable,
}

/// Builds the shared bench fixture (a few seconds; reused across benches).
pub fn bench_day() -> BenchDay {
    let campus = bench_campus();
    let day = build_day(&campus, 0);
    let storm = generate_storm_trace(
        &StormConfig {
            n_bots: 6,
            external_population: 80,
            duration: campus.duration,
            ..StormConfig::default()
        },
        1,
    );
    let nugache = generate_nugache_trace(
        &NugacheConfig {
            n_bots: 15,
            duration: campus.duration,
            ..NugacheConfig::default()
        },
        2,
    );
    let overlaid = overlay_bots(&day, &[&storm, &nugache], 3);
    let profiles = extract_profiles_table(&FlowTable::from_records(&overlaid.flows), |ip| {
        day.is_internal(ip)
    });
    BenchDay {
        day,
        flows: overlaid.flows,
        profiles,
    }
}
