/root/repo/target/release/examples/streaming_day-75a1637d9a95a072.d: examples/streaming_day.rs

/root/repo/target/release/examples/streaming_day-75a1637d9a95a072: examples/streaming_day.rs

examples/streaming_day.rs:
