/root/repo/target/release/deps/pw_traders-97825d7bdb6a26da.d: crates/pw-traders/src/lib.rs crates/pw-traders/src/bittorrent.rs crates/pw-traders/src/catalog.rs crates/pw-traders/src/emule.rs crates/pw-traders/src/gnutella.rs crates/pw-traders/src/session.rs

/root/repo/target/release/deps/libpw_traders-97825d7bdb6a26da.rlib: crates/pw-traders/src/lib.rs crates/pw-traders/src/bittorrent.rs crates/pw-traders/src/catalog.rs crates/pw-traders/src/emule.rs crates/pw-traders/src/gnutella.rs crates/pw-traders/src/session.rs

/root/repo/target/release/deps/libpw_traders-97825d7bdb6a26da.rmeta: crates/pw-traders/src/lib.rs crates/pw-traders/src/bittorrent.rs crates/pw-traders/src/catalog.rs crates/pw-traders/src/emule.rs crates/pw-traders/src/gnutella.rs crates/pw-traders/src/session.rs

crates/pw-traders/src/lib.rs:
crates/pw-traders/src/bittorrent.rs:
crates/pw-traders/src/catalog.rs:
crates/pw-traders/src/emule.rs:
crates/pw-traders/src/gnutella.rs:
crates/pw-traders/src/session.rs:
