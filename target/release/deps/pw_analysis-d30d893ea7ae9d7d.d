/root/repo/target/release/deps/pw_analysis-d30d893ea7ae9d7d.d: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs

/root/repo/target/release/deps/libpw_analysis-d30d893ea7ae9d7d.rlib: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs

/root/repo/target/release/deps/libpw_analysis-d30d893ea7ae9d7d.rmeta: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs

crates/pw-analysis/src/lib.rs:
crates/pw-analysis/src/cdf.rs:
crates/pw-analysis/src/cluster.rs:
crates/pw-analysis/src/emd.rs:
crates/pw-analysis/src/hist.rs:
crates/pw-analysis/src/roc.rs:
crates/pw-analysis/src/stats.rs:
