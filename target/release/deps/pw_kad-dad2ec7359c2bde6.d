/root/repo/target/release/deps/pw_kad-dad2ec7359c2bde6.d: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

/root/repo/target/release/deps/libpw_kad-dad2ec7359c2bde6.rlib: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

/root/repo/target/release/deps/libpw_kad-dad2ec7359c2bde6.rmeta: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

crates/pw-kad/src/lib.rs:
crates/pw-kad/src/id.rs:
crates/pw-kad/src/lookup.rs:
crates/pw-kad/src/messages.rs:
crates/pw-kad/src/routing.rs:
crates/pw-kad/src/sim.rs:
crates/pw-kad/src/wire.rs:
