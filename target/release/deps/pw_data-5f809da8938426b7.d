/root/repo/target/release/deps/pw_data-5f809da8938426b7.d: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

/root/repo/target/release/deps/libpw_data-5f809da8938426b7.rlib: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

/root/repo/target/release/deps/libpw_data-5f809da8938426b7.rmeta: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

crates/pw-data/src/lib.rs:
crates/pw-data/src/campus.rs:
crates/pw-data/src/experiment.rs:
crates/pw-data/src/labels.rs:
crates/pw-data/src/overlay.rs:
crates/pw-data/src/persist.rs:
