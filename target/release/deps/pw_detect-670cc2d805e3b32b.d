/root/repo/target/release/deps/pw_detect-670cc2d805e3b32b.d: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs

/root/repo/target/release/deps/libpw_detect-670cc2d805e3b32b.rlib: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs

/root/repo/target/release/deps/libpw_detect-670cc2d805e3b32b.rmeta: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs

crates/pw-detect/src/lib.rs:
crates/pw-detect/src/detectors.rs:
crates/pw-detect/src/error.rs:
crates/pw-detect/src/features.rs:
crates/pw-detect/src/multiday.rs:
crates/pw-detect/src/perport.rs:
crates/pw-detect/src/pipeline.rs:
crates/pw-detect/src/rates.rs:
crates/pw-detect/src/reduction.rs:
crates/pw-detect/src/stream.rs:
crates/pw-detect/src/tdg.rs:
