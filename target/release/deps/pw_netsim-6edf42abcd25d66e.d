/root/repo/target/release/deps/pw_netsim-6edf42abcd25d66e.d: crates/pw-netsim/src/lib.rs crates/pw-netsim/src/diurnal.rs crates/pw-netsim/src/engine.rs crates/pw-netsim/src/net.rs crates/pw-netsim/src/rng.rs crates/pw-netsim/src/sampling.rs crates/pw-netsim/src/time.rs

/root/repo/target/release/deps/libpw_netsim-6edf42abcd25d66e.rlib: crates/pw-netsim/src/lib.rs crates/pw-netsim/src/diurnal.rs crates/pw-netsim/src/engine.rs crates/pw-netsim/src/net.rs crates/pw-netsim/src/rng.rs crates/pw-netsim/src/sampling.rs crates/pw-netsim/src/time.rs

/root/repo/target/release/deps/libpw_netsim-6edf42abcd25d66e.rmeta: crates/pw-netsim/src/lib.rs crates/pw-netsim/src/diurnal.rs crates/pw-netsim/src/engine.rs crates/pw-netsim/src/net.rs crates/pw-netsim/src/rng.rs crates/pw-netsim/src/sampling.rs crates/pw-netsim/src/time.rs

crates/pw-netsim/src/lib.rs:
crates/pw-netsim/src/diurnal.rs:
crates/pw-netsim/src/engine.rs:
crates/pw-netsim/src/net.rs:
crates/pw-netsim/src/rng.rs:
crates/pw-netsim/src/sampling.rs:
crates/pw-netsim/src/time.rs:
