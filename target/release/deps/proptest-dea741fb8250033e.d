/root/repo/target/release/deps/proptest-dea741fb8250033e.d: .devstubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-dea741fb8250033e.rlib: .devstubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-dea741fb8250033e.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
