/root/repo/target/release/deps/gen_campus-c4014888e1bf820d.d: src/bin/gen-campus.rs

/root/repo/target/release/deps/gen_campus-c4014888e1bf820d: src/bin/gen-campus.rs

src/bin/gen-campus.rs:
