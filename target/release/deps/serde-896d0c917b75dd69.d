/root/repo/target/release/deps/serde-896d0c917b75dd69.d: .devstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-896d0c917b75dd69.rlib: .devstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-896d0c917b75dd69.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
