/root/repo/target/release/deps/pw_botnet-4bb87cdba3ca39f4.d: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

/root/repo/target/release/deps/libpw_botnet-4bb87cdba3ca39f4.rlib: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

/root/repo/target/release/deps/libpw_botnet-4bb87cdba3ca39f4.rmeta: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

crates/pw-botnet/src/lib.rs:
crates/pw-botnet/src/evasion.rs:
crates/pw-botnet/src/nugache.rs:
crates/pw-botnet/src/storm.rs:
crates/pw-botnet/src/trace.rs:
