/root/repo/target/release/deps/pw_apps-fbd1da6a3c63bd4c.d: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

/root/repo/target/release/deps/libpw_apps-fbd1da6a3c63bd4c.rlib: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

/root/repo/target/release/deps/libpw_apps-fbd1da6a3c63bd4c.rmeta: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

crates/pw-apps/src/lib.rs:
crates/pw-apps/src/daemons.rs:
crates/pw-apps/src/mail.rs:
crates/pw-apps/src/media.rs:
crates/pw-apps/src/model.rs:
crates/pw-apps/src/shell.rs:
crates/pw-apps/src/web.rs:
