/root/repo/target/release/deps/findplotters-bd0f685e135ab084.d: src/bin/findplotters.rs

/root/repo/target/release/deps/findplotters-bd0f685e135ab084: src/bin/findplotters.rs

src/bin/findplotters.rs:
