/root/repo/target/release/deps/rand-4058020a8c25d3f3.d: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4058020a8c25d3f3.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4058020a8c25d3f3.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
