/root/repo/target/release/deps/serde_derive-0366690d314327d9.d: .devstubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-0366690d314327d9.so: .devstubs/serde_derive/src/lib.rs

.devstubs/serde_derive/src/lib.rs:
