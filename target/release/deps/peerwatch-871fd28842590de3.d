/root/repo/target/release/deps/peerwatch-871fd28842590de3.d: src/lib.rs

/root/repo/target/release/deps/libpeerwatch-871fd28842590de3.rlib: src/lib.rs

/root/repo/target/release/deps/libpeerwatch-871fd28842590de3.rmeta: src/lib.rs

src/lib.rs:
