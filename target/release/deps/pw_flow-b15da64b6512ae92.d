/root/repo/target/release/deps/pw_flow-b15da64b6512ae92.d: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

/root/repo/target/release/deps/libpw_flow-b15da64b6512ae92.rlib: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

/root/repo/target/release/deps/libpw_flow-b15da64b6512ae92.rmeta: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

crates/pw-flow/src/lib.rs:
crates/pw-flow/src/aggregator.rs:
crates/pw-flow/src/csvio.rs:
crates/pw-flow/src/packet.rs:
crates/pw-flow/src/record.rs:
crates/pw-flow/src/signatures.rs:
crates/pw-flow/src/synth.rs:
