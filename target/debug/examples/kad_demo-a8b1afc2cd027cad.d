/root/repo/target/debug/examples/kad_demo-a8b1afc2cd027cad.d: examples/kad_demo.rs

/root/repo/target/debug/examples/kad_demo-a8b1afc2cd027cad: examples/kad_demo.rs

examples/kad_demo.rs:
