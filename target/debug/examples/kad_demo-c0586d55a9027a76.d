/root/repo/target/debug/examples/kad_demo-c0586d55a9027a76.d: examples/kad_demo.rs

/root/repo/target/debug/examples/libkad_demo-c0586d55a9027a76.rmeta: examples/kad_demo.rs

examples/kad_demo.rs:
