/root/repo/target/debug/examples/_span_probe-ff417fcf916d1727.d: examples/_span_probe.rs

/root/repo/target/debug/examples/_span_probe-ff417fcf916d1727: examples/_span_probe.rs

examples/_span_probe.rs:
