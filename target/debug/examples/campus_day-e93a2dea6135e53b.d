/root/repo/target/debug/examples/campus_day-e93a2dea6135e53b.d: examples/campus_day.rs Cargo.toml

/root/repo/target/debug/examples/libcampus_day-e93a2dea6135e53b.rmeta: examples/campus_day.rs Cargo.toml

examples/campus_day.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
