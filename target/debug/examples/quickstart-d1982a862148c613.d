/root/repo/target/debug/examples/quickstart-d1982a862148c613.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d1982a862148c613: examples/quickstart.rs

examples/quickstart.rs:
