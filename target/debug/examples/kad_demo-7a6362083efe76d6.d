/root/repo/target/debug/examples/kad_demo-7a6362083efe76d6.d: examples/kad_demo.rs Cargo.toml

/root/repo/target/debug/examples/libkad_demo-7a6362083efe76d6.rmeta: examples/kad_demo.rs Cargo.toml

examples/kad_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
