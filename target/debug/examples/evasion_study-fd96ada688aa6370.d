/root/repo/target/debug/examples/evasion_study-fd96ada688aa6370.d: examples/evasion_study.rs Cargo.toml

/root/repo/target/debug/examples/libevasion_study-fd96ada688aa6370.rmeta: examples/evasion_study.rs Cargo.toml

examples/evasion_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
