/root/repo/target/debug/examples/evasion_study-6336d778d8d73cf9.d: examples/evasion_study.rs

/root/repo/target/debug/examples/evasion_study-6336d778d8d73cf9: examples/evasion_study.rs

examples/evasion_study.rs:
