/root/repo/target/debug/examples/quickstart-f0f945f02c479894.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-f0f945f02c479894.rmeta: examples/quickstart.rs

examples/quickstart.rs:
