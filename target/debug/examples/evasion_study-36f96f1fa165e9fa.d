/root/repo/target/debug/examples/evasion_study-36f96f1fa165e9fa.d: examples/evasion_study.rs

/root/repo/target/debug/examples/libevasion_study-36f96f1fa165e9fa.rmeta: examples/evasion_study.rs

examples/evasion_study.rs:
