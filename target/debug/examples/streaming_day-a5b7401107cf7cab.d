/root/repo/target/debug/examples/streaming_day-a5b7401107cf7cab.d: examples/streaming_day.rs

/root/repo/target/debug/examples/libstreaming_day-a5b7401107cf7cab.rmeta: examples/streaming_day.rs

examples/streaming_day.rs:
