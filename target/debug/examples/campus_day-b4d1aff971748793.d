/root/repo/target/debug/examples/campus_day-b4d1aff971748793.d: examples/campus_day.rs

/root/repo/target/debug/examples/libcampus_day-b4d1aff971748793.rmeta: examples/campus_day.rs

examples/campus_day.rs:
