/root/repo/target/debug/examples/campus_day-b429e2e855dc83fc.d: examples/campus_day.rs

/root/repo/target/debug/examples/campus_day-b429e2e855dc83fc: examples/campus_day.rs

examples/campus_day.rs:
