/root/repo/target/debug/examples/streaming_day-b56d9974828c1608.d: examples/streaming_day.rs Cargo.toml

/root/repo/target/debug/examples/libstreaming_day-b56d9974828c1608.rmeta: examples/streaming_day.rs Cargo.toml

examples/streaming_day.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
