/root/repo/target/debug/deps/flow-a004008755def738.d: crates/pw-bench/benches/flow.rs Cargo.toml

/root/repo/target/debug/deps/libflow-a004008755def738.rmeta: crates/pw-bench/benches/flow.rs Cargo.toml

crates/pw-bench/benches/flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
