/root/repo/target/debug/deps/pw_kad-9cb8e2758b3f1952.d: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

/root/repo/target/debug/deps/libpw_kad-9cb8e2758b3f1952.rlib: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

/root/repo/target/debug/deps/libpw_kad-9cb8e2758b3f1952.rmeta: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

crates/pw-kad/src/lib.rs:
crates/pw-kad/src/id.rs:
crates/pw-kad/src/lookup.rs:
crates/pw-kad/src/messages.rs:
crates/pw-kad/src/routing.rs:
crates/pw-kad/src/sim.rs:
crates/pw-kad/src/wire.rs:
