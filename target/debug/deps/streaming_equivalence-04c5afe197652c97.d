/root/repo/target/debug/deps/streaming_equivalence-04c5afe197652c97.d: tests/streaming_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_equivalence-04c5afe197652c97.rmeta: tests/streaming_equivalence.rs Cargo.toml

tests/streaming_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
