/root/repo/target/debug/deps/stream_props-36d7ac35070da3c6.d: crates/pw-detect/tests/stream_props.rs Cargo.toml

/root/repo/target/debug/deps/libstream_props-36d7ac35070da3c6.rmeta: crates/pw-detect/tests/stream_props.rs Cargo.toml

crates/pw-detect/tests/stream_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
