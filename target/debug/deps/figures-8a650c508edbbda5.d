/root/repo/target/debug/deps/figures-8a650c508edbbda5.d: crates/pw-bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-8a650c508edbbda5.rmeta: crates/pw-bench/benches/figures.rs Cargo.toml

crates/pw-bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
