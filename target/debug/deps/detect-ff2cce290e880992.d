/root/repo/target/debug/deps/detect-ff2cce290e880992.d: crates/pw-bench/benches/detect.rs Cargo.toml

/root/repo/target/debug/deps/libdetect-ff2cce290e880992.rmeta: crates/pw-bench/benches/detect.rs Cargo.toml

crates/pw-bench/benches/detect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
