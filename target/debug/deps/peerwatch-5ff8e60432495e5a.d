/root/repo/target/debug/deps/peerwatch-5ff8e60432495e5a.d: src/lib.rs

/root/repo/target/debug/deps/peerwatch-5ff8e60432495e5a: src/lib.rs

src/lib.rs:
