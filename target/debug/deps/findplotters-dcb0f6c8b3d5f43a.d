/root/repo/target/debug/deps/findplotters-dcb0f6c8b3d5f43a.d: src/bin/findplotters.rs

/root/repo/target/debug/deps/libfindplotters-dcb0f6c8b3d5f43a.rmeta: src/bin/findplotters.rs

src/bin/findplotters.rs:
