/root/repo/target/debug/deps/stream_props-6c38f5608d95d227.d: crates/pw-detect/tests/stream_props.rs

/root/repo/target/debug/deps/stream_props-6c38f5608d95d227: crates/pw-detect/tests/stream_props.rs

crates/pw-detect/tests/stream_props.rs:
