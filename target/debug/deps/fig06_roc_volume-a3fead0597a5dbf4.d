/root/repo/target/debug/deps/fig06_roc_volume-a3fead0597a5dbf4.d: crates/pw-repro/src/bin/fig06_roc_volume.rs

/root/repo/target/debug/deps/libfig06_roc_volume-a3fead0597a5dbf4.rmeta: crates/pw-repro/src/bin/fig06_roc_volume.rs

crates/pw-repro/src/bin/fig06_roc_volume.rs:
