/root/repo/target/debug/deps/pw_flow-9478d0478140b4f3.d: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libpw_flow-9478d0478140b4f3.rmeta: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs Cargo.toml

crates/pw-flow/src/lib.rs:
crates/pw-flow/src/aggregator.rs:
crates/pw-flow/src/csvio.rs:
crates/pw-flow/src/packet.rs:
crates/pw-flow/src/record.rs:
crates/pw-flow/src/signatures.rs:
crates/pw-flow/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
