/root/repo/target/debug/deps/kad-7181fc5e4ae0f475.d: crates/pw-bench/benches/kad.rs

/root/repo/target/debug/deps/libkad-7181fc5e4ae0f475.rmeta: crates/pw-bench/benches/kad.rs

crates/pw-bench/benches/kad.rs:
