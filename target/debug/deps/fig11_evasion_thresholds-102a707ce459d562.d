/root/repo/target/debug/deps/fig11_evasion_thresholds-102a707ce459d562.d: crates/pw-repro/src/bin/fig11_evasion_thresholds.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_evasion_thresholds-102a707ce459d562.rmeta: crates/pw-repro/src/bin/fig11_evasion_thresholds.rs Cargo.toml

crates/pw-repro/src/bin/fig11_evasion_thresholds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
