/root/repo/target/debug/deps/fig03_interstitial-86ab116fc9f0df7b.d: crates/pw-repro/src/bin/fig03_interstitial.rs

/root/repo/target/debug/deps/libfig03_interstitial-86ab116fc9f0df7b.rmeta: crates/pw-repro/src/bin/fig03_interstitial.rs

crates/pw-repro/src/bin/fig03_interstitial.rs:
