/root/repo/target/debug/deps/calibrate-5aa1e2ad7bdd9baa.d: crates/pw-repro/src/bin/calibrate.rs

/root/repo/target/debug/deps/libcalibrate-5aa1e2ad7bdd9baa.rmeta: crates/pw-repro/src/bin/calibrate.rs

crates/pw-repro/src/bin/calibrate.rs:
