/root/repo/target/debug/deps/baseline_tdg-99c67f28dc4fa9f9.d: crates/pw-repro/src/bin/baseline_tdg.rs

/root/repo/target/debug/deps/libbaseline_tdg-99c67f28dc4fa9f9.rmeta: crates/pw-repro/src/bin/baseline_tdg.rs

crates/pw-repro/src/bin/baseline_tdg.rs:
