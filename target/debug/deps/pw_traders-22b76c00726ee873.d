/root/repo/target/debug/deps/pw_traders-22b76c00726ee873.d: crates/pw-traders/src/lib.rs crates/pw-traders/src/bittorrent.rs crates/pw-traders/src/catalog.rs crates/pw-traders/src/emule.rs crates/pw-traders/src/gnutella.rs crates/pw-traders/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libpw_traders-22b76c00726ee873.rmeta: crates/pw-traders/src/lib.rs crates/pw-traders/src/bittorrent.rs crates/pw-traders/src/catalog.rs crates/pw-traders/src/emule.rs crates/pw-traders/src/gnutella.rs crates/pw-traders/src/session.rs Cargo.toml

crates/pw-traders/src/lib.rs:
crates/pw-traders/src/bittorrent.rs:
crates/pw-traders/src/catalog.rs:
crates/pw-traders/src/emule.rs:
crates/pw-traders/src/gnutella.rs:
crates/pw-traders/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
