/root/repo/target/debug/deps/fig10_nugache_flows-a2080abd50888e0b.d: crates/pw-repro/src/bin/fig10_nugache_flows.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_nugache_flows-a2080abd50888e0b.rmeta: crates/pw-repro/src/bin/fig10_nugache_flows.rs Cargo.toml

crates/pw-repro/src/bin/fig10_nugache_flows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
