/root/repo/target/debug/deps/pw_detect-dfac7e82ca9763df.d: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs Cargo.toml

/root/repo/target/debug/deps/libpw_detect-dfac7e82ca9763df.rmeta: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs Cargo.toml

crates/pw-detect/src/lib.rs:
crates/pw-detect/src/detectors.rs:
crates/pw-detect/src/error.rs:
crates/pw-detect/src/features.rs:
crates/pw-detect/src/multiday.rs:
crates/pw-detect/src/perport.rs:
crates/pw-detect/src/pipeline.rs:
crates/pw-detect/src/rates.rs:
crates/pw-detect/src/reduction.rs:
crates/pw-detect/src/stream.rs:
crates/pw-detect/src/tdg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
