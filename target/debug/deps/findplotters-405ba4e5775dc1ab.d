/root/repo/target/debug/deps/findplotters-405ba4e5775dc1ab.d: src/bin/findplotters.rs

/root/repo/target/debug/deps/findplotters-405ba4e5775dc1ab: src/bin/findplotters.rs

src/bin/findplotters.rs:
