/root/repo/target/debug/deps/stream-2d97fe3d709bfbe0.d: crates/pw-bench/benches/stream.rs Cargo.toml

/root/repo/target/debug/deps/libstream-2d97fe3d709bfbe0.rmeta: crates/pw-bench/benches/stream.rs Cargo.toml

crates/pw-bench/benches/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
