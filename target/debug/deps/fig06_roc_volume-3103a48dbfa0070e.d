/root/repo/target/debug/deps/fig06_roc_volume-3103a48dbfa0070e.d: crates/pw-repro/src/bin/fig06_roc_volume.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_roc_volume-3103a48dbfa0070e.rmeta: crates/pw-repro/src/bin/fig06_roc_volume.rs Cargo.toml

crates/pw-repro/src/bin/fig06_roc_volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
