/root/repo/target/debug/deps/gen_campus-61c35bc60034de8b.d: src/bin/gen-campus.rs

/root/repo/target/debug/deps/libgen_campus-61c35bc60034de8b.rmeta: src/bin/gen-campus.rs

src/bin/gen-campus.rs:
