/root/repo/target/debug/deps/fig08_roc_hm-d1140bd86114e5bc.d: crates/pw-repro/src/bin/fig08_roc_hm.rs

/root/repo/target/debug/deps/libfig08_roc_hm-d1140bd86114e5bc.rmeta: crates/pw-repro/src/bin/fig08_roc_hm.rs

crates/pw-repro/src/bin/fig08_roc_hm.rs:
