/root/repo/target/debug/deps/pw_kad-e9f87fef0232d6e0.d: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

/root/repo/target/debug/deps/libpw_kad-e9f87fef0232d6e0.rmeta: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

crates/pw-kad/src/lib.rs:
crates/pw-kad/src/id.rs:
crates/pw-kad/src/lookup.rs:
crates/pw-kad/src/messages.rs:
crates/pw-kad/src/routing.rs:
crates/pw-kad/src/sim.rs:
crates/pw-kad/src/wire.rs:
