/root/repo/target/debug/deps/summary-73348ab60b2673f5.d: crates/pw-repro/src/bin/summary.rs

/root/repo/target/debug/deps/libsummary-73348ab60b2673f5.rmeta: crates/pw-repro/src/bin/summary.rs

crates/pw-repro/src/bin/summary.rs:
