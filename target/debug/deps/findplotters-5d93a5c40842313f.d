/root/repo/target/debug/deps/findplotters-5d93a5c40842313f.d: src/bin/findplotters.rs Cargo.toml

/root/repo/target/debug/deps/libfindplotters-5d93a5c40842313f.rmeta: src/bin/findplotters.rs Cargo.toml

src/bin/findplotters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
