/root/repo/target/debug/deps/findplotters-cdab08f4a85281ee.d: src/bin/findplotters.rs

/root/repo/target/debug/deps/findplotters-cdab08f4a85281ee: src/bin/findplotters.rs

src/bin/findplotters.rs:
