/root/repo/target/debug/deps/pw_apps-9a9651eb62a432cc.d: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

/root/repo/target/debug/deps/pw_apps-9a9651eb62a432cc: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

crates/pw-apps/src/lib.rs:
crates/pw-apps/src/daemons.rs:
crates/pw-apps/src/mail.rs:
crates/pw-apps/src/media.rs:
crates/pw-apps/src/model.rs:
crates/pw-apps/src/shell.rs:
crates/pw-apps/src/web.rs:
