/root/repo/target/debug/deps/fig09_pipeline-f515374c8e1e9971.d: crates/pw-repro/src/bin/fig09_pipeline.rs

/root/repo/target/debug/deps/libfig09_pipeline-f515374c8e1e9971.rmeta: crates/pw-repro/src/bin/fig09_pipeline.rs

crates/pw-repro/src/bin/fig09_pipeline.rs:
