/root/repo/target/debug/deps/gen_campus-650fc201dd5b7b80.d: src/bin/gen-campus.rs

/root/repo/target/debug/deps/gen_campus-650fc201dd5b7b80: src/bin/gen-campus.rs

src/bin/gen-campus.rs:
