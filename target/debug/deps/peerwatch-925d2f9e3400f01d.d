/root/repo/target/debug/deps/peerwatch-925d2f9e3400f01d.d: src/lib.rs

/root/repo/target/debug/deps/libpeerwatch-925d2f9e3400f01d.rmeta: src/lib.rs

src/lib.rs:
