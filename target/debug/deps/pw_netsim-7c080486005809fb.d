/root/repo/target/debug/deps/pw_netsim-7c080486005809fb.d: crates/pw-netsim/src/lib.rs crates/pw-netsim/src/diurnal.rs crates/pw-netsim/src/engine.rs crates/pw-netsim/src/net.rs crates/pw-netsim/src/rng.rs crates/pw-netsim/src/sampling.rs crates/pw-netsim/src/time.rs

/root/repo/target/debug/deps/libpw_netsim-7c080486005809fb.rmeta: crates/pw-netsim/src/lib.rs crates/pw-netsim/src/diurnal.rs crates/pw-netsim/src/engine.rs crates/pw-netsim/src/net.rs crates/pw-netsim/src/rng.rs crates/pw-netsim/src/sampling.rs crates/pw-netsim/src/time.rs

crates/pw-netsim/src/lib.rs:
crates/pw-netsim/src/diurnal.rs:
crates/pw-netsim/src/engine.rs:
crates/pw-netsim/src/net.rs:
crates/pw-netsim/src/rng.rs:
crates/pw-netsim/src/sampling.rs:
crates/pw-netsim/src/time.rs:
