/root/repo/target/debug/deps/criterion-9d5436d0a4cd6516.d: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-9d5436d0a4cd6516.rmeta: .devstubs/criterion/src/lib.rs

.devstubs/criterion/src/lib.rs:
