/root/repo/target/debug/deps/peerwatch-f06b5be120122482.d: src/lib.rs

/root/repo/target/debug/deps/libpeerwatch-f06b5be120122482.rlib: src/lib.rs

/root/repo/target/debug/deps/libpeerwatch-f06b5be120122482.rmeta: src/lib.rs

src/lib.rs:
