/root/repo/target/debug/deps/rand-2150a55c1ce4ce26.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2150a55c1ce4ce26.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2150a55c1ce4ce26.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
