/root/repo/target/debug/deps/fig07_roc_churn-0ba22bdf5cf6bc62.d: crates/pw-repro/src/bin/fig07_roc_churn.rs

/root/repo/target/debug/deps/libfig07_roc_churn-0ba22bdf5cf6bc62.rmeta: crates/pw-repro/src/bin/fig07_roc_churn.rs

crates/pw-repro/src/bin/fig07_roc_churn.rs:
