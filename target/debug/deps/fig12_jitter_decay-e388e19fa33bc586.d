/root/repo/target/debug/deps/fig12_jitter_decay-e388e19fa33bc586.d: crates/pw-repro/src/bin/fig12_jitter_decay.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_jitter_decay-e388e19fa33bc586.rmeta: crates/pw-repro/src/bin/fig12_jitter_decay.rs Cargo.toml

crates/pw-repro/src/bin/fig12_jitter_decay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
