/root/repo/target/debug/deps/fig06_roc_volume-42f87d32f83884a3.d: crates/pw-repro/src/bin/fig06_roc_volume.rs

/root/repo/target/debug/deps/libfig06_roc_volume-42f87d32f83884a3.rmeta: crates/pw-repro/src/bin/fig06_roc_volume.rs

crates/pw-repro/src/bin/fig06_roc_volume.rs:
