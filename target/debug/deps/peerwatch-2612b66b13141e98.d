/root/repo/target/debug/deps/peerwatch-2612b66b13141e98.d: src/lib.rs

/root/repo/target/debug/deps/libpeerwatch-2612b66b13141e98.rmeta: src/lib.rs

src/lib.rs:
