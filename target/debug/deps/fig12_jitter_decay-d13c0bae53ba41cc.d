/root/repo/target/debug/deps/fig12_jitter_decay-d13c0bae53ba41cc.d: crates/pw-repro/src/bin/fig12_jitter_decay.rs

/root/repo/target/debug/deps/libfig12_jitter_decay-d13c0bae53ba41cc.rmeta: crates/pw-repro/src/bin/fig12_jitter_decay.rs

crates/pw-repro/src/bin/fig12_jitter_decay.rs:
