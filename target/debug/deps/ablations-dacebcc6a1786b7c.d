/root/repo/target/debug/deps/ablations-dacebcc6a1786b7c.d: crates/pw-repro/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-dacebcc6a1786b7c.rmeta: crates/pw-repro/src/bin/ablations.rs

crates/pw-repro/src/bin/ablations.rs:
