/root/repo/target/debug/deps/baselines_and_extensions-7358fc742bd37d51.d: tests/baselines_and_extensions.rs

/root/repo/target/debug/deps/baselines_and_extensions-7358fc742bd37d51: tests/baselines_and_extensions.rs

tests/baselines_and_extensions.rs:
