/root/repo/target/debug/deps/fig09_pipeline-25e8dd675ce3aeab.d: crates/pw-repro/src/bin/fig09_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_pipeline-25e8dd675ce3aeab.rmeta: crates/pw-repro/src/bin/fig09_pipeline.rs Cargo.toml

crates/pw-repro/src/bin/fig09_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
