/root/repo/target/debug/deps/baselines_and_extensions-6e050eb070df7a7f.d: tests/baselines_and_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines_and_extensions-6e050eb070df7a7f.rmeta: tests/baselines_and_extensions.rs Cargo.toml

tests/baselines_and_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
