/root/repo/target/debug/deps/pw_botnet-dd200951d74b3589.d: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

/root/repo/target/debug/deps/libpw_botnet-dd200951d74b3589.rmeta: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

crates/pw-botnet/src/lib.rs:
crates/pw-botnet/src/evasion.rs:
crates/pw-botnet/src/nugache.rs:
crates/pw-botnet/src/storm.rs:
crates/pw-botnet/src/trace.rs:
