/root/repo/target/debug/deps/fig05_failed_cdf-ae82a7d902114c48.d: crates/pw-repro/src/bin/fig05_failed_cdf.rs

/root/repo/target/debug/deps/libfig05_failed_cdf-ae82a7d902114c48.rmeta: crates/pw-repro/src/bin/fig05_failed_cdf.rs

crates/pw-repro/src/bin/fig05_failed_cdf.rs:
