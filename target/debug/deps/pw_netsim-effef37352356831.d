/root/repo/target/debug/deps/pw_netsim-effef37352356831.d: crates/pw-netsim/src/lib.rs crates/pw-netsim/src/diurnal.rs crates/pw-netsim/src/engine.rs crates/pw-netsim/src/net.rs crates/pw-netsim/src/rng.rs crates/pw-netsim/src/sampling.rs crates/pw-netsim/src/time.rs

/root/repo/target/debug/deps/pw_netsim-effef37352356831: crates/pw-netsim/src/lib.rs crates/pw-netsim/src/diurnal.rs crates/pw-netsim/src/engine.rs crates/pw-netsim/src/net.rs crates/pw-netsim/src/rng.rs crates/pw-netsim/src/sampling.rs crates/pw-netsim/src/time.rs

crates/pw-netsim/src/lib.rs:
crates/pw-netsim/src/diurnal.rs:
crates/pw-netsim/src/engine.rs:
crates/pw-netsim/src/net.rs:
crates/pw-netsim/src/rng.rs:
crates/pw-netsim/src/sampling.rs:
crates/pw-netsim/src/time.rs:
