/root/repo/target/debug/deps/pw_botnet-bfe5ad64bb0af690.d: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

/root/repo/target/debug/deps/pw_botnet-bfe5ad64bb0af690: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

crates/pw-botnet/src/lib.rs:
crates/pw-botnet/src/evasion.rs:
crates/pw-botnet/src/nugache.rs:
crates/pw-botnet/src/storm.rs:
crates/pw-botnet/src/trace.rs:
