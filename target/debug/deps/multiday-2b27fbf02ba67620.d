/root/repo/target/debug/deps/multiday-2b27fbf02ba67620.d: crates/pw-repro/src/bin/multiday.rs

/root/repo/target/debug/deps/libmultiday-2b27fbf02ba67620.rmeta: crates/pw-repro/src/bin/multiday.rs

crates/pw-repro/src/bin/multiday.rs:
