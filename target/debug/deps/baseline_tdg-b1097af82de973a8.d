/root/repo/target/debug/deps/baseline_tdg-b1097af82de973a8.d: crates/pw-repro/src/bin/baseline_tdg.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_tdg-b1097af82de973a8.rmeta: crates/pw-repro/src/bin/baseline_tdg.rs Cargo.toml

crates/pw-repro/src/bin/baseline_tdg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
