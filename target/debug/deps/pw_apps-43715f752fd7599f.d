/root/repo/target/debug/deps/pw_apps-43715f752fd7599f.d: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs Cargo.toml

/root/repo/target/debug/deps/libpw_apps-43715f752fd7599f.rmeta: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs Cargo.toml

crates/pw-apps/src/lib.rs:
crates/pw-apps/src/daemons.rs:
crates/pw-apps/src/mail.rs:
crates/pw-apps/src/media.rs:
crates/pw-apps/src/model.rs:
crates/pw-apps/src/shell.rs:
crates/pw-apps/src/web.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
