/root/repo/target/debug/deps/gen_campus-23883ae24fab84bb.d: src/bin/gen-campus.rs Cargo.toml

/root/repo/target/debug/deps/libgen_campus-23883ae24fab84bb.rmeta: src/bin/gen-campus.rs Cargo.toml

src/bin/gen-campus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
