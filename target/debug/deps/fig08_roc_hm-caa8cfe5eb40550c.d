/root/repo/target/debug/deps/fig08_roc_hm-caa8cfe5eb40550c.d: crates/pw-repro/src/bin/fig08_roc_hm.rs

/root/repo/target/debug/deps/libfig08_roc_hm-caa8cfe5eb40550c.rmeta: crates/pw-repro/src/bin/fig08_roc_hm.rs

crates/pw-repro/src/bin/fig08_roc_hm.rs:
