/root/repo/target/debug/deps/fig02_new_ips-8228587875aac993.d: crates/pw-repro/src/bin/fig02_new_ips.rs

/root/repo/target/debug/deps/libfig02_new_ips-8228587875aac993.rmeta: crates/pw-repro/src/bin/fig02_new_ips.rs

crates/pw-repro/src/bin/fig02_new_ips.rs:
