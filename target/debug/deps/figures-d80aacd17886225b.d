/root/repo/target/debug/deps/figures-d80aacd17886225b.d: crates/pw-bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-d80aacd17886225b.rmeta: crates/pw-bench/benches/figures.rs

crates/pw-bench/benches/figures.rs:
