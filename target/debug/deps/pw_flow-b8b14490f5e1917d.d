/root/repo/target/debug/deps/pw_flow-b8b14490f5e1917d.d: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

/root/repo/target/debug/deps/pw_flow-b8b14490f5e1917d: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

crates/pw-flow/src/lib.rs:
crates/pw-flow/src/aggregator.rs:
crates/pw-flow/src/csvio.rs:
crates/pw-flow/src/packet.rs:
crates/pw-flow/src/record.rs:
crates/pw-flow/src/signatures.rs:
crates/pw-flow/src/synth.rs:
