/root/repo/target/debug/deps/fig01_volume_cdf-36db06cd9c6806bc.d: crates/pw-repro/src/bin/fig01_volume_cdf.rs

/root/repo/target/debug/deps/libfig01_volume_cdf-36db06cd9c6806bc.rmeta: crates/pw-repro/src/bin/fig01_volume_cdf.rs

crates/pw-repro/src/bin/fig01_volume_cdf.rs:
