/root/repo/target/debug/deps/pw_apps-081d664db9df86fb.d: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

/root/repo/target/debug/deps/libpw_apps-081d664db9df86fb.rlib: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

/root/repo/target/debug/deps/libpw_apps-081d664db9df86fb.rmeta: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

crates/pw-apps/src/lib.rs:
crates/pw-apps/src/daemons.rs:
crates/pw-apps/src/mail.rs:
crates/pw-apps/src/media.rs:
crates/pw-apps/src/model.rs:
crates/pw-apps/src/shell.rs:
crates/pw-apps/src/web.rs:
