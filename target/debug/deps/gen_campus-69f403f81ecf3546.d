/root/repo/target/debug/deps/gen_campus-69f403f81ecf3546.d: src/bin/gen-campus.rs Cargo.toml

/root/repo/target/debug/deps/libgen_campus-69f403f81ecf3546.rmeta: src/bin/gen-campus.rs Cargo.toml

src/bin/gen-campus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
