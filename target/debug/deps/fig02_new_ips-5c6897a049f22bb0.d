/root/repo/target/debug/deps/fig02_new_ips-5c6897a049f22bb0.d: crates/pw-repro/src/bin/fig02_new_ips.rs

/root/repo/target/debug/deps/libfig02_new_ips-5c6897a049f22bb0.rmeta: crates/pw-repro/src/bin/fig02_new_ips.rs

crates/pw-repro/src/bin/fig02_new_ips.rs:
