/root/repo/target/debug/deps/fig05_failed_cdf-7ae1b4978bbe6607.d: crates/pw-repro/src/bin/fig05_failed_cdf.rs

/root/repo/target/debug/deps/libfig05_failed_cdf-7ae1b4978bbe6607.rmeta: crates/pw-repro/src/bin/fig05_failed_cdf.rs

crates/pw-repro/src/bin/fig05_failed_cdf.rs:
