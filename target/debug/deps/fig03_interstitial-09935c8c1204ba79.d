/root/repo/target/debug/deps/fig03_interstitial-09935c8c1204ba79.d: crates/pw-repro/src/bin/fig03_interstitial.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_interstitial-09935c8c1204ba79.rmeta: crates/pw-repro/src/bin/fig03_interstitial.rs Cargo.toml

crates/pw-repro/src/bin/fig03_interstitial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
