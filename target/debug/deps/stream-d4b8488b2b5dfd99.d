/root/repo/target/debug/deps/stream-d4b8488b2b5dfd99.d: crates/pw-bench/benches/stream.rs

/root/repo/target/debug/deps/libstream-d4b8488b2b5dfd99.rmeta: crates/pw-bench/benches/stream.rs

crates/pw-bench/benches/stream.rs:
