/root/repo/target/debug/deps/fig12_jitter_decay-1af81d6f5d7ff25e.d: crates/pw-repro/src/bin/fig12_jitter_decay.rs

/root/repo/target/debug/deps/libfig12_jitter_decay-1af81d6f5d7ff25e.rmeta: crates/pw-repro/src/bin/fig12_jitter_decay.rs

crates/pw-repro/src/bin/fig12_jitter_decay.rs:
