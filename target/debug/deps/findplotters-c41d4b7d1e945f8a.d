/root/repo/target/debug/deps/findplotters-c41d4b7d1e945f8a.d: src/bin/findplotters.rs Cargo.toml

/root/repo/target/debug/deps/libfindplotters-c41d4b7d1e945f8a.rmeta: src/bin/findplotters.rs Cargo.toml

src/bin/findplotters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
