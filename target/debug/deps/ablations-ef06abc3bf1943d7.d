/root/repo/target/debug/deps/ablations-ef06abc3bf1943d7.d: crates/pw-repro/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-ef06abc3bf1943d7.rmeta: crates/pw-repro/src/bin/ablations.rs

crates/pw-repro/src/bin/ablations.rs:
