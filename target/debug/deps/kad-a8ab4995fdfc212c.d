/root/repo/target/debug/deps/kad-a8ab4995fdfc212c.d: crates/pw-bench/benches/kad.rs Cargo.toml

/root/repo/target/debug/deps/libkad-a8ab4995fdfc212c.rmeta: crates/pw-bench/benches/kad.rs Cargo.toml

crates/pw-bench/benches/kad.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
