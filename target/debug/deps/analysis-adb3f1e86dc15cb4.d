/root/repo/target/debug/deps/analysis-adb3f1e86dc15cb4.d: crates/pw-bench/benches/analysis.rs

/root/repo/target/debug/deps/libanalysis-adb3f1e86dc15cb4.rmeta: crates/pw-bench/benches/analysis.rs

crates/pw-bench/benches/analysis.rs:
