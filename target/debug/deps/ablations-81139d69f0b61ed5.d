/root/repo/target/debug/deps/ablations-81139d69f0b61ed5.d: crates/pw-repro/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-81139d69f0b61ed5.rmeta: crates/pw-repro/src/bin/ablations.rs Cargo.toml

crates/pw-repro/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
