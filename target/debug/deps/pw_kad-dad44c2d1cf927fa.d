/root/repo/target/debug/deps/pw_kad-dad44c2d1cf927fa.d: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libpw_kad-dad44c2d1cf927fa.rmeta: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs Cargo.toml

crates/pw-kad/src/lib.rs:
crates/pw-kad/src/id.rs:
crates/pw-kad/src/lookup.rs:
crates/pw-kad/src/messages.rs:
crates/pw-kad/src/routing.rs:
crates/pw-kad/src/sim.rs:
crates/pw-kad/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
