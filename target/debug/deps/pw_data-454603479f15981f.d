/root/repo/target/debug/deps/pw_data-454603479f15981f.d: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs Cargo.toml

/root/repo/target/debug/deps/libpw_data-454603479f15981f.rmeta: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs Cargo.toml

crates/pw-data/src/lib.rs:
crates/pw-data/src/campus.rs:
crates/pw-data/src/experiment.rs:
crates/pw-data/src/labels.rs:
crates/pw-data/src/overlay.rs:
crates/pw-data/src/persist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
