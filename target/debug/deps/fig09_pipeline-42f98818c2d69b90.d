/root/repo/target/debug/deps/fig09_pipeline-42f98818c2d69b90.d: crates/pw-repro/src/bin/fig09_pipeline.rs

/root/repo/target/debug/deps/libfig09_pipeline-42f98818c2d69b90.rmeta: crates/pw-repro/src/bin/fig09_pipeline.rs

crates/pw-repro/src/bin/fig09_pipeline.rs:
