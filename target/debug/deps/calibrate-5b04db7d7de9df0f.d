/root/repo/target/debug/deps/calibrate-5b04db7d7de9df0f.d: crates/pw-repro/src/bin/calibrate.rs

/root/repo/target/debug/deps/libcalibrate-5b04db7d7de9df0f.rmeta: crates/pw-repro/src/bin/calibrate.rs

crates/pw-repro/src/bin/calibrate.rs:
