/root/repo/target/debug/deps/pw_data-d9b5897b2f9c720c.d: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

/root/repo/target/debug/deps/libpw_data-d9b5897b2f9c720c.rlib: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

/root/repo/target/debug/deps/libpw_data-d9b5897b2f9c720c.rmeta: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

crates/pw-data/src/lib.rs:
crates/pw-data/src/campus.rs:
crates/pw-data/src/experiment.rs:
crates/pw-data/src/labels.rs:
crates/pw-data/src/overlay.rs:
crates/pw-data/src/persist.rs:
