/root/repo/target/debug/deps/summary-d46ccae292420317.d: crates/pw-repro/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-d46ccae292420317.rmeta: crates/pw-repro/src/bin/summary.rs Cargo.toml

crates/pw-repro/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
