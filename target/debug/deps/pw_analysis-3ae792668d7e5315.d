/root/repo/target/debug/deps/pw_analysis-3ae792668d7e5315.d: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs

/root/repo/target/debug/deps/pw_analysis-3ae792668d7e5315: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs

crates/pw-analysis/src/lib.rs:
crates/pw-analysis/src/cdf.rs:
crates/pw-analysis/src/cluster.rs:
crates/pw-analysis/src/emd.rs:
crates/pw-analysis/src/hist.rs:
crates/pw-analysis/src/roc.rs:
crates/pw-analysis/src/stats.rs:
