/root/repo/target/debug/deps/pw_detect-165f32adba74c105.d: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs

/root/repo/target/debug/deps/libpw_detect-165f32adba74c105.rlib: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs

/root/repo/target/debug/deps/libpw_detect-165f32adba74c105.rmeta: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs

crates/pw-detect/src/lib.rs:
crates/pw-detect/src/detectors.rs:
crates/pw-detect/src/error.rs:
crates/pw-detect/src/features.rs:
crates/pw-detect/src/multiday.rs:
crates/pw-detect/src/perport.rs:
crates/pw-detect/src/pipeline.rs:
crates/pw-detect/src/rates.rs:
crates/pw-detect/src/reduction.rs:
crates/pw-detect/src/stream.rs:
crates/pw-detect/src/tdg.rs:
