/root/repo/target/debug/deps/serde-2f84f9df340d5131.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2f84f9df340d5131.rlib: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2f84f9df340d5131.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
