/root/repo/target/debug/deps/pw_traders-43f691d04e874cc8.d: crates/pw-traders/src/lib.rs crates/pw-traders/src/bittorrent.rs crates/pw-traders/src/catalog.rs crates/pw-traders/src/emule.rs crates/pw-traders/src/gnutella.rs crates/pw-traders/src/session.rs

/root/repo/target/debug/deps/libpw_traders-43f691d04e874cc8.rmeta: crates/pw-traders/src/lib.rs crates/pw-traders/src/bittorrent.rs crates/pw-traders/src/catalog.rs crates/pw-traders/src/emule.rs crates/pw-traders/src/gnutella.rs crates/pw-traders/src/session.rs

crates/pw-traders/src/lib.rs:
crates/pw-traders/src/bittorrent.rs:
crates/pw-traders/src/catalog.rs:
crates/pw-traders/src/emule.rs:
crates/pw-traders/src/gnutella.rs:
crates/pw-traders/src/session.rs:
