/root/repo/target/debug/deps/serde_derive-5c6a633cbac30333.d: .devstubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-5c6a633cbac30333.so: .devstubs/serde_derive/src/lib.rs

.devstubs/serde_derive/src/lib.rs:
