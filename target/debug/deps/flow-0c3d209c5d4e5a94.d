/root/repo/target/debug/deps/flow-0c3d209c5d4e5a94.d: crates/pw-bench/benches/flow.rs

/root/repo/target/debug/deps/libflow-0c3d209c5d4e5a94.rmeta: crates/pw-bench/benches/flow.rs

crates/pw-bench/benches/flow.rs:
