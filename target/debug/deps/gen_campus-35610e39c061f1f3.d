/root/repo/target/debug/deps/gen_campus-35610e39c061f1f3.d: src/bin/gen-campus.rs

/root/repo/target/debug/deps/gen_campus-35610e39c061f1f3: src/bin/gen-campus.rs

src/bin/gen-campus.rs:
