/root/repo/target/debug/deps/pw_analysis-f44c3d898d6a8fa1.d: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs

/root/repo/target/debug/deps/libpw_analysis-f44c3d898d6a8fa1.rmeta: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs

crates/pw-analysis/src/lib.rs:
crates/pw-analysis/src/cdf.rs:
crates/pw-analysis/src/cluster.rs:
crates/pw-analysis/src/emd.rs:
crates/pw-analysis/src/hist.rs:
crates/pw-analysis/src/roc.rs:
crates/pw-analysis/src/stats.rs:
