/root/repo/target/debug/deps/fig08_roc_hm-63d451641d1f86a4.d: crates/pw-repro/src/bin/fig08_roc_hm.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_roc_hm-63d451641d1f86a4.rmeta: crates/pw-repro/src/bin/fig08_roc_hm.rs Cargo.toml

crates/pw-repro/src/bin/fig08_roc_hm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
