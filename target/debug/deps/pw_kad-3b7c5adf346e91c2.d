/root/repo/target/debug/deps/pw_kad-3b7c5adf346e91c2.d: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

/root/repo/target/debug/deps/pw_kad-3b7c5adf346e91c2: crates/pw-kad/src/lib.rs crates/pw-kad/src/id.rs crates/pw-kad/src/lookup.rs crates/pw-kad/src/messages.rs crates/pw-kad/src/routing.rs crates/pw-kad/src/sim.rs crates/pw-kad/src/wire.rs

crates/pw-kad/src/lib.rs:
crates/pw-kad/src/id.rs:
crates/pw-kad/src/lookup.rs:
crates/pw-kad/src/messages.rs:
crates/pw-kad/src/routing.rs:
crates/pw-kad/src/sim.rs:
crates/pw-kad/src/wire.rs:
