/root/repo/target/debug/deps/pw_data-250291e5817de8a3.d: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

/root/repo/target/debug/deps/libpw_data-250291e5817de8a3.rmeta: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

crates/pw-data/src/lib.rs:
crates/pw-data/src/campus.rs:
crates/pw-data/src/experiment.rs:
crates/pw-data/src/labels.rs:
crates/pw-data/src/overlay.rs:
crates/pw-data/src/persist.rs:
