/root/repo/target/debug/deps/pw_repro-2987ea968a066ed8.d: crates/pw-repro/src/lib.rs crates/pw-repro/src/context.rs crates/pw-repro/src/figures.rs crates/pw-repro/src/table.rs

/root/repo/target/debug/deps/libpw_repro-2987ea968a066ed8.rmeta: crates/pw-repro/src/lib.rs crates/pw-repro/src/context.rs crates/pw-repro/src/figures.rs crates/pw-repro/src/table.rs

crates/pw-repro/src/lib.rs:
crates/pw-repro/src/context.rs:
crates/pw-repro/src/figures.rs:
crates/pw-repro/src/table.rs:
