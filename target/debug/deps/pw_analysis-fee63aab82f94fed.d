/root/repo/target/debug/deps/pw_analysis-fee63aab82f94fed.d: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpw_analysis-fee63aab82f94fed.rmeta: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs Cargo.toml

crates/pw-analysis/src/lib.rs:
crates/pw-analysis/src/cdf.rs:
crates/pw-analysis/src/cluster.rs:
crates/pw-analysis/src/emd.rs:
crates/pw-analysis/src/hist.rs:
crates/pw-analysis/src/roc.rs:
crates/pw-analysis/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
