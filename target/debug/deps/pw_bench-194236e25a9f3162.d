/root/repo/target/debug/deps/pw_bench-194236e25a9f3162.d: crates/pw-bench/src/lib.rs

/root/repo/target/debug/deps/libpw_bench-194236e25a9f3162.rmeta: crates/pw-bench/src/lib.rs

crates/pw-bench/src/lib.rs:
