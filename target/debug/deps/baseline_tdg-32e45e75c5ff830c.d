/root/repo/target/debug/deps/baseline_tdg-32e45e75c5ff830c.d: crates/pw-repro/src/bin/baseline_tdg.rs

/root/repo/target/debug/deps/libbaseline_tdg-32e45e75c5ff830c.rmeta: crates/pw-repro/src/bin/baseline_tdg.rs

crates/pw-repro/src/bin/baseline_tdg.rs:
