/root/repo/target/debug/deps/pw_data-45fc466f16ca989e.d: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

/root/repo/target/debug/deps/pw_data-45fc466f16ca989e: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

crates/pw-data/src/lib.rs:
crates/pw-data/src/campus.rs:
crates/pw-data/src/experiment.rs:
crates/pw-data/src/labels.rs:
crates/pw-data/src/overlay.rs:
crates/pw-data/src/persist.rs:
