/root/repo/target/debug/deps/fig10_nugache_flows-3da2a0bbfde90f4d.d: crates/pw-repro/src/bin/fig10_nugache_flows.rs

/root/repo/target/debug/deps/libfig10_nugache_flows-3da2a0bbfde90f4d.rmeta: crates/pw-repro/src/bin/fig10_nugache_flows.rs

crates/pw-repro/src/bin/fig10_nugache_flows.rs:
