/root/repo/target/debug/deps/fig07_roc_churn-db96adfa434c420e.d: crates/pw-repro/src/bin/fig07_roc_churn.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_roc_churn-db96adfa434c420e.rmeta: crates/pw-repro/src/bin/fig07_roc_churn.rs Cargo.toml

crates/pw-repro/src/bin/fig07_roc_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
