/root/repo/target/debug/deps/analysis-dc428c31bf1fc792.d: crates/pw-bench/benches/analysis.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis-dc428c31bf1fc792.rmeta: crates/pw-bench/benches/analysis.rs Cargo.toml

crates/pw-bench/benches/analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
