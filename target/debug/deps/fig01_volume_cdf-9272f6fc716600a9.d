/root/repo/target/debug/deps/fig01_volume_cdf-9272f6fc716600a9.d: crates/pw-repro/src/bin/fig01_volume_cdf.rs

/root/repo/target/debug/deps/libfig01_volume_cdf-9272f6fc716600a9.rmeta: crates/pw-repro/src/bin/fig01_volume_cdf.rs

crates/pw-repro/src/bin/fig01_volume_cdf.rs:
