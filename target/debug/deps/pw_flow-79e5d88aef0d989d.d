/root/repo/target/debug/deps/pw_flow-79e5d88aef0d989d.d: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

/root/repo/target/debug/deps/libpw_flow-79e5d88aef0d989d.rlib: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

/root/repo/target/debug/deps/libpw_flow-79e5d88aef0d989d.rmeta: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

crates/pw-flow/src/lib.rs:
crates/pw-flow/src/aggregator.rs:
crates/pw-flow/src/csvio.rs:
crates/pw-flow/src/packet.rs:
crates/pw-flow/src/record.rs:
crates/pw-flow/src/signatures.rs:
crates/pw-flow/src/synth.rs:
