/root/repo/target/debug/deps/pw_botnet-893d62db7af7fe56.d: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

/root/repo/target/debug/deps/libpw_botnet-893d62db7af7fe56.rlib: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

/root/repo/target/debug/deps/libpw_botnet-893d62db7af7fe56.rmeta: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs

crates/pw-botnet/src/lib.rs:
crates/pw-botnet/src/evasion.rs:
crates/pw-botnet/src/nugache.rs:
crates/pw-botnet/src/storm.rs:
crates/pw-botnet/src/trace.rs:
