/root/repo/target/debug/deps/streaming_equivalence-e3930628c9951413.d: tests/streaming_equivalence.rs

/root/repo/target/debug/deps/streaming_equivalence-e3930628c9951413: tests/streaming_equivalence.rs

tests/streaming_equivalence.rs:
