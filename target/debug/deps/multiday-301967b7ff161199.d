/root/repo/target/debug/deps/multiday-301967b7ff161199.d: crates/pw-repro/src/bin/multiday.rs Cargo.toml

/root/repo/target/debug/deps/libmultiday-301967b7ff161199.rmeta: crates/pw-repro/src/bin/multiday.rs Cargo.toml

crates/pw-repro/src/bin/multiday.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
