/root/repo/target/debug/deps/pw_detect-8a2764f2b6e9c272.d: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs

/root/repo/target/debug/deps/libpw_detect-8a2764f2b6e9c272.rmeta: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/error.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/stream.rs crates/pw-detect/src/tdg.rs

crates/pw-detect/src/lib.rs:
crates/pw-detect/src/detectors.rs:
crates/pw-detect/src/error.rs:
crates/pw-detect/src/features.rs:
crates/pw-detect/src/multiday.rs:
crates/pw-detect/src/perport.rs:
crates/pw-detect/src/pipeline.rs:
crates/pw-detect/src/rates.rs:
crates/pw-detect/src/reduction.rs:
crates/pw-detect/src/stream.rs:
crates/pw-detect/src/tdg.rs:
