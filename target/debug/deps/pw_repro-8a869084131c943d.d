/root/repo/target/debug/deps/pw_repro-8a869084131c943d.d: crates/pw-repro/src/lib.rs crates/pw-repro/src/context.rs crates/pw-repro/src/figures.rs crates/pw-repro/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libpw_repro-8a869084131c943d.rmeta: crates/pw-repro/src/lib.rs crates/pw-repro/src/context.rs crates/pw-repro/src/figures.rs crates/pw-repro/src/table.rs Cargo.toml

crates/pw-repro/src/lib.rs:
crates/pw-repro/src/context.rs:
crates/pw-repro/src/figures.rs:
crates/pw-repro/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
