/root/repo/target/debug/deps/extension_perport-96cf79dbeee134cb.d: crates/pw-repro/src/bin/extension_perport.rs

/root/repo/target/debug/deps/libextension_perport-96cf79dbeee134cb.rmeta: crates/pw-repro/src/bin/extension_perport.rs

crates/pw-repro/src/bin/extension_perport.rs:
