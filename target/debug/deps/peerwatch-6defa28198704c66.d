/root/repo/target/debug/deps/peerwatch-6defa28198704c66.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpeerwatch-6defa28198704c66.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
