/root/repo/target/debug/deps/fig11_evasion_thresholds-1411e1dcb37d3412.d: crates/pw-repro/src/bin/fig11_evasion_thresholds.rs

/root/repo/target/debug/deps/libfig11_evasion_thresholds-1411e1dcb37d3412.rmeta: crates/pw-repro/src/bin/fig11_evasion_thresholds.rs

crates/pw-repro/src/bin/fig11_evasion_thresholds.rs:
