/root/repo/target/debug/deps/pw_apps-089ce49fe6cc1839.d: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

/root/repo/target/debug/deps/libpw_apps-089ce49fe6cc1839.rmeta: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

crates/pw-apps/src/lib.rs:
crates/pw-apps/src/daemons.rs:
crates/pw-apps/src/mail.rs:
crates/pw-apps/src/media.rs:
crates/pw-apps/src/model.rs:
crates/pw-apps/src/shell.rs:
crates/pw-apps/src/web.rs:
