/root/repo/target/debug/deps/fig10_nugache_flows-d47e663a6a0d9404.d: crates/pw-repro/src/bin/fig10_nugache_flows.rs

/root/repo/target/debug/deps/libfig10_nugache_flows-d47e663a6a0d9404.rmeta: crates/pw-repro/src/bin/fig10_nugache_flows.rs

crates/pw-repro/src/bin/fig10_nugache_flows.rs:
