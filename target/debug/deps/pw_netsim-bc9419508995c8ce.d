/root/repo/target/debug/deps/pw_netsim-bc9419508995c8ce.d: crates/pw-netsim/src/lib.rs crates/pw-netsim/src/diurnal.rs crates/pw-netsim/src/engine.rs crates/pw-netsim/src/net.rs crates/pw-netsim/src/rng.rs crates/pw-netsim/src/sampling.rs crates/pw-netsim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libpw_netsim-bc9419508995c8ce.rmeta: crates/pw-netsim/src/lib.rs crates/pw-netsim/src/diurnal.rs crates/pw-netsim/src/engine.rs crates/pw-netsim/src/net.rs crates/pw-netsim/src/rng.rs crates/pw-netsim/src/sampling.rs crates/pw-netsim/src/time.rs Cargo.toml

crates/pw-netsim/src/lib.rs:
crates/pw-netsim/src/diurnal.rs:
crates/pw-netsim/src/engine.rs:
crates/pw-netsim/src/net.rs:
crates/pw-netsim/src/rng.rs:
crates/pw-netsim/src/sampling.rs:
crates/pw-netsim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
