/root/repo/target/debug/deps/evasion_properties-fdab2b610bc97d05.d: tests/evasion_properties.rs

/root/repo/target/debug/deps/evasion_properties-fdab2b610bc97d05: tests/evasion_properties.rs

tests/evasion_properties.rs:
