/root/repo/target/debug/deps/proptest-c0dd1bab0c4e88a2.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c0dd1bab0c4e88a2.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
