/root/repo/target/debug/deps/pw_apps-49c31432ab1f2330.d: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

/root/repo/target/debug/deps/libpw_apps-49c31432ab1f2330.rmeta: crates/pw-apps/src/lib.rs crates/pw-apps/src/daemons.rs crates/pw-apps/src/mail.rs crates/pw-apps/src/media.rs crates/pw-apps/src/model.rs crates/pw-apps/src/shell.rs crates/pw-apps/src/web.rs

crates/pw-apps/src/lib.rs:
crates/pw-apps/src/daemons.rs:
crates/pw-apps/src/mail.rs:
crates/pw-apps/src/media.rs:
crates/pw-apps/src/model.rs:
crates/pw-apps/src/shell.rs:
crates/pw-apps/src/web.rs:
