/root/repo/target/debug/deps/proptest-5e68e57672bb5cf9.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5e68e57672bb5cf9.rlib: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5e68e57672bb5cf9.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
