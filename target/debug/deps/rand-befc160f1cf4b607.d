/root/repo/target/debug/deps/rand-befc160f1cf4b607.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-befc160f1cf4b607.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
