/root/repo/target/debug/deps/fig03_interstitial-44882415f9ee87db.d: crates/pw-repro/src/bin/fig03_interstitial.rs

/root/repo/target/debug/deps/libfig03_interstitial-44882415f9ee87db.rmeta: crates/pw-repro/src/bin/fig03_interstitial.rs

crates/pw-repro/src/bin/fig03_interstitial.rs:
