/root/repo/target/debug/deps/extension_perport-6501b70185eaaac5.d: crates/pw-repro/src/bin/extension_perport.rs

/root/repo/target/debug/deps/libextension_perport-6501b70185eaaac5.rmeta: crates/pw-repro/src/bin/extension_perport.rs

crates/pw-repro/src/bin/extension_perport.rs:
