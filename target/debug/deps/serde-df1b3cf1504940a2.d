/root/repo/target/debug/deps/serde-df1b3cf1504940a2.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-df1b3cf1504940a2.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
