/root/repo/target/debug/deps/end_to_end-9552343850fa4980.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9552343850fa4980: tests/end_to_end.rs

tests/end_to_end.rs:
