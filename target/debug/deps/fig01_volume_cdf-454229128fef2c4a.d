/root/repo/target/debug/deps/fig01_volume_cdf-454229128fef2c4a.d: crates/pw-repro/src/bin/fig01_volume_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_volume_cdf-454229128fef2c4a.rmeta: crates/pw-repro/src/bin/fig01_volume_cdf.rs Cargo.toml

crates/pw-repro/src/bin/fig01_volume_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
