/root/repo/target/debug/deps/pw_detect-18bd3bb68ce4d0f3.d: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/tdg.rs

/root/repo/target/debug/deps/libpw_detect-18bd3bb68ce4d0f3.rmeta: crates/pw-detect/src/lib.rs crates/pw-detect/src/detectors.rs crates/pw-detect/src/features.rs crates/pw-detect/src/multiday.rs crates/pw-detect/src/perport.rs crates/pw-detect/src/pipeline.rs crates/pw-detect/src/rates.rs crates/pw-detect/src/reduction.rs crates/pw-detect/src/tdg.rs

crates/pw-detect/src/lib.rs:
crates/pw-detect/src/detectors.rs:
crates/pw-detect/src/features.rs:
crates/pw-detect/src/multiday.rs:
crates/pw-detect/src/perport.rs:
crates/pw-detect/src/pipeline.rs:
crates/pw-detect/src/rates.rs:
crates/pw-detect/src/reduction.rs:
crates/pw-detect/src/tdg.rs:
