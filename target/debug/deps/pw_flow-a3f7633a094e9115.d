/root/repo/target/debug/deps/pw_flow-a3f7633a094e9115.d: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

/root/repo/target/debug/deps/libpw_flow-a3f7633a094e9115.rmeta: crates/pw-flow/src/lib.rs crates/pw-flow/src/aggregator.rs crates/pw-flow/src/csvio.rs crates/pw-flow/src/packet.rs crates/pw-flow/src/record.rs crates/pw-flow/src/signatures.rs crates/pw-flow/src/synth.rs

crates/pw-flow/src/lib.rs:
crates/pw-flow/src/aggregator.rs:
crates/pw-flow/src/csvio.rs:
crates/pw-flow/src/packet.rs:
crates/pw-flow/src/record.rs:
crates/pw-flow/src/signatures.rs:
crates/pw-flow/src/synth.rs:
