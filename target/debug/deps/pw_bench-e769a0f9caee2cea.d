/root/repo/target/debug/deps/pw_bench-e769a0f9caee2cea.d: crates/pw-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpw_bench-e769a0f9caee2cea.rmeta: crates/pw-bench/src/lib.rs Cargo.toml

crates/pw-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
