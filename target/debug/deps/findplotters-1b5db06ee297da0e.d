/root/repo/target/debug/deps/findplotters-1b5db06ee297da0e.d: src/bin/findplotters.rs

/root/repo/target/debug/deps/libfindplotters-1b5db06ee297da0e.rmeta: src/bin/findplotters.rs

src/bin/findplotters.rs:
