/root/repo/target/debug/deps/gen_campus-b53e45cbc66603ea.d: src/bin/gen-campus.rs

/root/repo/target/debug/deps/libgen_campus-b53e45cbc66603ea.rmeta: src/bin/gen-campus.rs

src/bin/gen-campus.rs:
