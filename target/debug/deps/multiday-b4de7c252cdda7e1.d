/root/repo/target/debug/deps/multiday-b4de7c252cdda7e1.d: crates/pw-repro/src/bin/multiday.rs

/root/repo/target/debug/deps/libmultiday-b4de7c252cdda7e1.rmeta: crates/pw-repro/src/bin/multiday.rs

crates/pw-repro/src/bin/multiday.rs:
