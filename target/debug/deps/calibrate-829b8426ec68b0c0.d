/root/repo/target/debug/deps/calibrate-829b8426ec68b0c0.d: crates/pw-repro/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-829b8426ec68b0c0.rmeta: crates/pw-repro/src/bin/calibrate.rs Cargo.toml

crates/pw-repro/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
