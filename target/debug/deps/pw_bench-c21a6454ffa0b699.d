/root/repo/target/debug/deps/pw_bench-c21a6454ffa0b699.d: crates/pw-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpw_bench-c21a6454ffa0b699.rmeta: crates/pw-bench/src/lib.rs Cargo.toml

crates/pw-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
