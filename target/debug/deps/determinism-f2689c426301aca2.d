/root/repo/target/debug/deps/determinism-f2689c426301aca2.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-f2689c426301aca2: tests/determinism.rs

tests/determinism.rs:
