/root/repo/target/debug/deps/summary-3c937a32df534907.d: crates/pw-repro/src/bin/summary.rs

/root/repo/target/debug/deps/libsummary-3c937a32df534907.rmeta: crates/pw-repro/src/bin/summary.rs

crates/pw-repro/src/bin/summary.rs:
