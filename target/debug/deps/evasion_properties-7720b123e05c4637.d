/root/repo/target/debug/deps/evasion_properties-7720b123e05c4637.d: tests/evasion_properties.rs Cargo.toml

/root/repo/target/debug/deps/libevasion_properties-7720b123e05c4637.rmeta: tests/evasion_properties.rs Cargo.toml

tests/evasion_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
