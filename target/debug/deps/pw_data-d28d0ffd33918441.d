/root/repo/target/debug/deps/pw_data-d28d0ffd33918441.d: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

/root/repo/target/debug/deps/libpw_data-d28d0ffd33918441.rmeta: crates/pw-data/src/lib.rs crates/pw-data/src/campus.rs crates/pw-data/src/experiment.rs crates/pw-data/src/labels.rs crates/pw-data/src/overlay.rs crates/pw-data/src/persist.rs

crates/pw-data/src/lib.rs:
crates/pw-data/src/campus.rs:
crates/pw-data/src/experiment.rs:
crates/pw-data/src/labels.rs:
crates/pw-data/src/overlay.rs:
crates/pw-data/src/persist.rs:
