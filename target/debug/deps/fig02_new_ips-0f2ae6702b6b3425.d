/root/repo/target/debug/deps/fig02_new_ips-0f2ae6702b6b3425.d: crates/pw-repro/src/bin/fig02_new_ips.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_new_ips-0f2ae6702b6b3425.rmeta: crates/pw-repro/src/bin/fig02_new_ips.rs Cargo.toml

crates/pw-repro/src/bin/fig02_new_ips.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
