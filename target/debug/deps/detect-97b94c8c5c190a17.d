/root/repo/target/debug/deps/detect-97b94c8c5c190a17.d: crates/pw-bench/benches/detect.rs

/root/repo/target/debug/deps/libdetect-97b94c8c5c190a17.rmeta: crates/pw-bench/benches/detect.rs

crates/pw-bench/benches/detect.rs:
