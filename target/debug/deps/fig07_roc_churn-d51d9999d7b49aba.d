/root/repo/target/debug/deps/fig07_roc_churn-d51d9999d7b49aba.d: crates/pw-repro/src/bin/fig07_roc_churn.rs

/root/repo/target/debug/deps/libfig07_roc_churn-d51d9999d7b49aba.rmeta: crates/pw-repro/src/bin/fig07_roc_churn.rs

crates/pw-repro/src/bin/fig07_roc_churn.rs:
