/root/repo/target/debug/deps/pw_analysis-e6a4627c8291dec1.d: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs

/root/repo/target/debug/deps/libpw_analysis-e6a4627c8291dec1.rmeta: crates/pw-analysis/src/lib.rs crates/pw-analysis/src/cdf.rs crates/pw-analysis/src/cluster.rs crates/pw-analysis/src/emd.rs crates/pw-analysis/src/hist.rs crates/pw-analysis/src/roc.rs crates/pw-analysis/src/stats.rs

crates/pw-analysis/src/lib.rs:
crates/pw-analysis/src/cdf.rs:
crates/pw-analysis/src/cluster.rs:
crates/pw-analysis/src/emd.rs:
crates/pw-analysis/src/hist.rs:
crates/pw-analysis/src/roc.rs:
crates/pw-analysis/src/stats.rs:
