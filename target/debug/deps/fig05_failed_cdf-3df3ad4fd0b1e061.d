/root/repo/target/debug/deps/fig05_failed_cdf-3df3ad4fd0b1e061.d: crates/pw-repro/src/bin/fig05_failed_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_failed_cdf-3df3ad4fd0b1e061.rmeta: crates/pw-repro/src/bin/fig05_failed_cdf.rs Cargo.toml

crates/pw-repro/src/bin/fig05_failed_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
