/root/repo/target/debug/deps/pw_botnet-3851888f9fb1cb33.d: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libpw_botnet-3851888f9fb1cb33.rmeta: crates/pw-botnet/src/lib.rs crates/pw-botnet/src/evasion.rs crates/pw-botnet/src/nugache.rs crates/pw-botnet/src/storm.rs crates/pw-botnet/src/trace.rs Cargo.toml

crates/pw-botnet/src/lib.rs:
crates/pw-botnet/src/evasion.rs:
crates/pw-botnet/src/nugache.rs:
crates/pw-botnet/src/storm.rs:
crates/pw-botnet/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
