/root/repo/target/debug/deps/extension_perport-5120c8fd94ced4e6.d: crates/pw-repro/src/bin/extension_perport.rs Cargo.toml

/root/repo/target/debug/deps/libextension_perport-5120c8fd94ced4e6.rmeta: crates/pw-repro/src/bin/extension_perport.rs Cargo.toml

crates/pw-repro/src/bin/extension_perport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
