/root/repo/target/debug/deps/fig11_evasion_thresholds-47da24bcb3105489.d: crates/pw-repro/src/bin/fig11_evasion_thresholds.rs

/root/repo/target/debug/deps/libfig11_evasion_thresholds-47da24bcb3105489.rmeta: crates/pw-repro/src/bin/fig11_evasion_thresholds.rs

crates/pw-repro/src/bin/fig11_evasion_thresholds.rs:
