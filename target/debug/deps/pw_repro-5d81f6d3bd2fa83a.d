/root/repo/target/debug/deps/pw_repro-5d81f6d3bd2fa83a.d: crates/pw-repro/src/lib.rs crates/pw-repro/src/context.rs crates/pw-repro/src/figures.rs crates/pw-repro/src/table.rs

/root/repo/target/debug/deps/libpw_repro-5d81f6d3bd2fa83a.rmeta: crates/pw-repro/src/lib.rs crates/pw-repro/src/context.rs crates/pw-repro/src/figures.rs crates/pw-repro/src/table.rs

crates/pw-repro/src/lib.rs:
crates/pw-repro/src/context.rs:
crates/pw-repro/src/figures.rs:
crates/pw-repro/src/table.rs:
