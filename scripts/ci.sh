#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/ci.sh
# Fails fast on the first broken stage so the cheap checks run first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings + deprecated API use)"
# `-D deprecated` keeps the workspace itself off the `pw_detect::compat`
# legacy surface; the compat parity tests opt back in with
# `#[allow(deprecated)]`.
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

echo "==> pw-lint (determinism + concurrency/resource-safety rules + dependency policy)"
# Exits nonzero on any unallowlisted violation, stale lint.toml entry,
# "TODO: justify" placeholder reason, or dependency-policy breach; the
# JSON artifact (rule/path/line/evidence/allowed per finding) lands in
# target/pw-lint.json for editors and later CI stages. On failure, rerun
# in human form so the log shows the findings, not a JSON blob.
mkdir -p target
if ! cargo run -q -p pw-lint -- --deps --json > target/pw-lint.json; then
  cargo run -q -p pw-lint -- --deps || true
  echo "pw-lint FAILED (JSON artifact: target/pw-lint.json)" >&2
  exit 1
fi

echo "==> lint.toml hygiene (no placeholder reasons, pins still live)"
# `--fix-allowlist` baselines say `TODO: justify`; merging one is the
# allowlist equivalent of an empty commit message. Stale pins already
# fail the main lint stage above; this catches the placeholders even if
# someone lints with a narrowed --rules list.
if grep -n "TODO: justify" lint.toml; then
  echo "lint.toml has placeholder reasons — write the why" >&2
  exit 1
fi

echo "==> engine-thread protocol model (exhaustive interleavings, loom-style)"
# Dependency-free explicit-state DFS over every schedule of the bounded
# ingest queue + capacity-1 replies + shutdown + fail-safe protocol;
# asserts deadlock freedom, exactly-once replay, and shutdown delivery.
cargo test -q -p pw-server --features loom --test engine_model

echo "==> cargo test"
cargo test --workspace -q

echo "==> fault-injection suite (chaos + checkpoint/restore + corruption recovery)"
cargo test -q --test chaos_injection --test checkpoint_roundtrip

echo "==> sketch accuracy gate (exact vs sketched tier, fast scale)"
# Campus-day suspect sets must be identical between tiers, the sketched
# bytes-per-host cap must hold, and dense-sweep scalar-stage divergence
# must stay within its bound; see crates/pw-repro/src/bin/sketch_accuracy.rs.
PW_FAST=1 cargo run -q -p pw-repro --bin sketch_accuracy -- --check

echo "==> theta_hm parity gate (exact vs bucketed mode, fast scale)"
# Bucketed mode below its cutoff must be bitwise-identical to the exact
# path on every synthetic fixture, campus-day suspect sets must not
# diverge, and forced coarse bucketing must keep machine-periodic-host
# agreement and suspect Jaccard above their floors; see
# crates/pw-repro/src/bin/theta_hm_parity.rs and BENCH_10.json.
PW_FAST=1 cargo run -q -p pw-repro --bin theta_hm_parity -- --check

echo "==> server smoke (serve / chaos send / kill -9 / resume / byte-level chaos proxy / diff vs batch)"
# A seeded multi-exporter day through `findplotters serve`, with injected
# disconnects, a mid-run SIGKILL, and a final stage streaming every
# exporter through the seeded byte-level chaos proxy (bit flips + mid-frame
# cuts, client retrying on capped backoff), must reach the same verdict as
# batch `findplotters` over the merged CSV, with HEALTH accounting for
# every corrupt frame.
if ./scripts/server_smoke.sh; then
  echo "server smoke OK"
else
  echo "server smoke FAILED" >&2
  exit 1
fi

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run -q

echo "==> bench smoke (detect benches execute one iteration)"
# `--test` runs each bench once without measuring: catches panics in bench
# setup/bodies (e.g. the theta_hm scaling grid) without paying bench time.
cargo bench -q -p pw-bench --bench detect -- --test

echo "==> cargo doc (public docs must build cleanly)"
cargo doc --workspace --no-deps -q

echo "==> miri smoke over the pure kernels (tolerated: skips without nightly miri)"
# Undefined-behaviour check on the side the lexical lints can't see.
# The toolchain may lack nightly or the miri component (offline images
# often do); that is reported loudly but tolerated — the stage gates
# only when it can actually run.
if cargo +nightly miri --version >/dev/null 2>&1; then
  if MIRIFLAGS="-Zmiri-disable-isolation" \
     cargo +nightly miri test -q -p pw-sketch -p pw-analysis 2>&1 | tail -20; then
    echo "miri OK"
  else
    echo "miri FAILED" >&2
    exit 1
  fi
else
  echo "miri SKIPPED: nightly toolchain with the miri component is not installed" >&2
fi

echo "CI OK"
