#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/ci.sh
# Fails fast on the first broken stage so the cheap checks run first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> pw-lint (determinism & panic-safety rules + dependency policy)"
# Exits nonzero on any unallowlisted violation, stale lint.toml entry,
# "TODO: justify" placeholder reason, or dependency-policy breach; the
# final line is the violation-count summary.
cargo run -q -p pw-lint -- --deps

echo "==> cargo test"
cargo test --workspace -q

echo "==> fault-injection suite (chaos + checkpoint/restore)"
cargo test -q --test chaos_injection --test checkpoint_roundtrip

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run -q

echo "==> bench smoke (detect benches execute one iteration)"
# `--test` runs each bench once without measuring: catches panics in bench
# setup/bodies (e.g. the theta_hm scaling grid) without paying bench time.
cargo bench -q -p pw-bench --bench detect -- --test

echo "==> cargo doc (public docs must build cleanly)"
cargo doc --workspace --no-deps -q

echo "CI OK"
