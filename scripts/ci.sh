#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/ci.sh
# Fails fast on the first broken stage so the cheap checks run first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings + deprecated API use)"
# `-D deprecated` keeps the workspace itself off the `pw_detect::compat`
# legacy surface; the compat parity tests opt back in with
# `#[allow(deprecated)]`.
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

echo "==> pw-lint (determinism & panic-safety rules + dependency policy)"
# Exits nonzero on any unallowlisted violation, stale lint.toml entry,
# "TODO: justify" placeholder reason, or dependency-policy breach; the
# final line is the violation-count summary.
cargo run -q -p pw-lint -- --deps

echo "==> cargo test"
cargo test --workspace -q

echo "==> fault-injection suite (chaos + checkpoint/restore + corruption recovery)"
cargo test -q --test chaos_injection --test checkpoint_roundtrip

echo "==> sketch accuracy gate (exact vs sketched tier, fast scale)"
# Campus-day suspect sets must be identical between tiers, the sketched
# bytes-per-host cap must hold, and dense-sweep scalar-stage divergence
# must stay within its bound; see crates/pw-repro/src/bin/sketch_accuracy.rs.
PW_FAST=1 cargo run -q -p pw-repro --bin sketch_accuracy -- --check

echo "==> server smoke (serve / chaos send / kill -9 / resume / byte-level chaos proxy / diff vs batch)"
# A seeded multi-exporter day through `findplotters serve`, with injected
# disconnects, a mid-run SIGKILL, and a final stage streaming every
# exporter through the seeded byte-level chaos proxy (bit flips + mid-frame
# cuts, client retrying on capped backoff), must reach the same verdict as
# batch `findplotters` over the merged CSV, with HEALTH accounting for
# every corrupt frame.
if ./scripts/server_smoke.sh; then
  echo "server smoke OK"
else
  echo "server smoke FAILED" >&2
  exit 1
fi

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run -q

echo "==> bench smoke (detect benches execute one iteration)"
# `--test` runs each bench once without measuring: catches panics in bench
# setup/bodies (e.g. the theta_hm scaling grid) without paying bench time.
cargo bench -q -p pw-bench --bench detect -- --test

echo "==> cargo doc (public docs must build cleanly)"
cargo doc --workspace --no-deps -q

echo "CI OK"
