#!/usr/bin/env bash
# Server smoke test: detection-as-a-service must match batch detection.
#
# Drives the real binaries end to end:
#   1. generate a small seeded campus day and stripe it across 3 exporters;
#   2. run `findplotters serve` on an ephemeral port with checkpointing;
#   3. stream two exporters (one with seeded mid-stream disconnects),
#      snapshot, then `kill -9` the server;
#   4. restart from the checkpoint, replay everything (the sequence
#      handshake skips applied flows), add the third exporter;
#   5. FINISH + REPORT, and diff the suspect list against a batch
#      `findplotters` run over the merged CSV;
#   6. chaos stage: a fresh server fed through `send --chaos-*`, which
#      interposes a seeded byte-level proxy (bit flips, mid-frame cuts)
#      in front of every exporter; the frame CRC must catch the
#      corruption, the client must retry through it, HEALTH must report
#      the damage, and the verdict must still diff clean against batch.
#
# Exits nonzero on any divergence. Skips (exit 0) where loopback sockets
# cannot be bound, mirroring tests/server_e2e.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

FP=target/debug/findplotters
GEN=target/debug/gen-campus
cargo build -q --bin findplotters --bin gen-campus

SMOKE=$(mktemp -d)
SERVER=""
cleanup() {
  [ -n "$SERVER" ] && kill -9 "$SERVER" 2>/dev/null || true
  rm -rf "$SMOKE"
}
trap cleanup EXIT

# Wait until the server has applied exactly $2 flows (sends return when
# the frames leave the socket, not when the engine consumes them).
wait_applied() {
  local addr=$1 want=$2 i
  for i in $(seq 200); do
    if "$FP" query --connect "$addr" STATS | grep -q "attempted=$want "; then
      return 0
    fi
    sleep 0.1
  done
  echo "server at $addr never applied $want flows" >&2
  return 1
}

# Start a server life against a checkpoint file; sets $SERVER and $ADDR.
start_server() {
  local log=$1 ckpt=${2:-server.ckpt}
  "$FP" serve --bind 127.0.0.1:0 --window 48 --lateness 2880 \
    --checkpoint "$SMOKE/$ckpt" --checkpoint-every 4096 \
    >"$log" 2>/dev/null &
  SERVER=$!
  local i
  for i in $(seq 100); do
    grep -q '^listening on ' "$log" 2>/dev/null && break
    if ! kill -0 "$SERVER" 2>/dev/null; then
      return 1
    fi
    sleep 0.1
  done
  ADDR=$(awk '/^listening on /{print $3; exit}' "$log")
  [ -n "$ADDR" ]
}

"$GEN" "$SMOKE" --seed 3 --small >/dev/null 2>&1

# Stripe the day round-robin across three border exporters.
head -1 "$SMOKE/flows.csv" | tee "$SMOKE/e1.csv" "$SMOKE/e2.csv" "$SMOKE/e3.csv" >/dev/null
tail -n +2 "$SMOKE/flows.csv" | awk -v d="$SMOKE" '
  NR%3==1{print >> (d"/e1.csv")}
  NR%3==2{print >> (d"/e2.csv")}
  NR%3==0{print >> (d"/e3.csv")}'
TOTAL=$(($(wc -l <"$SMOKE/flows.csv") - 1))
PART=$((($(wc -l <"$SMOKE/e1.csv") - 1) + ($(wc -l <"$SMOKE/e2.csv") - 1)))

# Reference verdict: batch detection over the merged flows.
"$FP" "$SMOKE/flows.csv" 2>/dev/null |
  sed -n 's/^  \([0-9.]*\)$/\1/p' >"$SMOKE/want.txt"

# Life 1: two exporters (one with seeded cuts), checkpoint, die hard.
if ! start_server "$SMOKE/serve1.log"; then
  echo "cannot bind loopback sockets here; skipping server smoke" >&2
  exit 0
fi
"$FP" send "$SMOKE/e1.csv" --connect "$ADDR" --exporter 1 --cuts 2 --seed 7 2>/dev/null
"$FP" send "$SMOKE/e2.csv" --connect "$ADDR" --exporter 2 2>/dev/null
wait_applied "$ADDR" "$PART"
"$FP" query --connect "$ADDR" CHECKPOINT >/dev/null
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
SERVER=""

# Life 2: resume from the snapshot; replays are skipped, exporter 3 is new.
start_server "$SMOKE/serve2.log"
# Everything exporter 1 delivered before the kill was checkpointed, so
# the replay must be skipped in full by the sequence handshake.
"$FP" send "$SMOKE/e1.csv" --connect "$ADDR" --exporter 1 2>"$SMOKE/resend1.log"
grep -q "exporter 1: 0 sent" "$SMOKE/resend1.log" || {
  echo "exporter 1 was not skipped on resume:" >&2
  cat "$SMOKE/resend1.log" >&2
  exit 1
}
"$FP" send "$SMOKE/e2.csv" --connect "$ADDR" --exporter 2 2>/dev/null
"$FP" send "$SMOKE/e3.csv" --connect "$ADDR" --exporter 3 --cuts 1 --seed 9 2>/dev/null
wait_applied "$ADDR" "$TOTAL"
"$FP" query --connect "$ADDR" FINISH >/dev/null
"$FP" query --connect "$ADDR" REPORT >"$SMOKE/report.txt"
"$FP" query --connect "$ADDR" SHUTDOWN >/dev/null
wait "$SERVER" 2>/dev/null || true
SERVER=""

grep -q "flows=$TOTAL " "$SMOKE/report.txt" || {
  echo "server window does not contain all $TOTAL flows:" >&2
  head -1 "$SMOKE/report.txt" >&2
  exit 1
}
sed -n 's/^suspect //p' "$SMOKE/report.txt" >"$SMOKE/got.txt"
if ! diff -u "$SMOKE/want.txt" "$SMOKE/got.txt"; then
  echo "server verdict diverges from batch findplotters" >&2
  exit 1
fi

# Life 3 (chaos stage): a fresh server, every exporter streamed through a
# seeded byte-level chaos proxy that flips bits and severs mid-frame, with
# the client retrying on capped backoff. The CRC layer must detect the
# corruption, resume must make delivery exactly-once anyway, and the
# verdict must still match batch bit-for-bit.
start_server "$SMOKE/serve3.log" chaos.ckpt
for e in 1 2 3; do
  "$FP" send "$SMOKE/e$e.csv" --connect "$ADDR" --exporter "$e" \
    --seed $((100 + e)) --chaos-conns 2 --chaos-flips 2 --chaos-cut \
    --retry 8 --backoff-base-ms 5 --backoff-cap-ms 50 \
    2>"$SMOKE/chaos$e.log"
done
wait_applied "$ADDR" "$TOTAL"
"$FP" query --connect "$ADDR" FINISH >/dev/null
"$FP" query --connect "$ADDR" REPORT >"$SMOKE/chaos-report.txt"
"$FP" query --connect "$ADDR" HEALTH >"$SMOKE/health.txt"
"$FP" query --connect "$ADDR" SHUTDOWN >/dev/null
wait "$SERVER" 2>/dev/null || true
SERVER=""

grep -q 'status=degraded' "$SMOKE/health.txt" || {
  echo "HEALTH does not report the injected corruption:" >&2
  cat "$SMOKE/health.txt" >&2
  exit 1
}
grep -q 'frames_corrupt=0 ' "$SMOKE/health.txt" && {
  echo "no corrupt frame ever reached the server; chaos stage proved nothing" >&2
  cat "$SMOKE/health.txt" >&2
  exit 1
}
grep -hq ' [1-9][0-9]* retries' "$SMOKE"/chaos[123].log || {
  echo "no exporter ever burned a retry; chaos stage proved nothing" >&2
  cat "$SMOKE"/chaos[123].log >&2
  exit 1
}
grep -q "flows=$TOTAL " "$SMOKE/chaos-report.txt" || {
  echo "chaos-stage window does not contain all $TOTAL flows:" >&2
  head -1 "$SMOKE/chaos-report.txt" >&2
  exit 1
}
sed -n 's/^suspect //p' "$SMOKE/chaos-report.txt" >"$SMOKE/chaos-got.txt"
if ! diff -u "$SMOKE/want.txt" "$SMOKE/chaos-got.txt"; then
  echo "chaos-stage verdict diverges from batch findplotters" >&2
  exit 1
fi
