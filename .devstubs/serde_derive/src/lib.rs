//! Dev-only stub derive macros for the serde facade. Emits trivial
//! (non-functional) trait impls so downstream code type-checks offline.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name following the `struct`/`enum` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    panic!("serde_derive stub: no struct/enum name found");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 serializer.serialize_unit()\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(_d: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"stub\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
