//! Dev-only type-check stub of the `serde` facade (offline container).
//! Covers exactly the API surface this workspace uses.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn deserialize_bytes<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: de::Visitor<'de>;
    fn deserialize_any<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: de::Visitor<'de>;
}

pub mod ser {
    pub trait Error: Sized + std::fmt::Debug {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    pub trait Error: Sized + std::fmt::Debug {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
        fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
            let _ = len;
            let _ = exp;
            Self::custom("invalid length")
        }
    }

    pub trait Expected {
        fn fmt(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result;
    }

    impl<'de, T> Expected for T
    where
        T: Visitor<'de>,
    {
        fn fmt(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.expecting(formatter)
        }
    }

    pub trait Visitor<'de>: Sized {
        type Value;
        fn expecting(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result;
        fn visit_bytes<E>(self, v: &[u8]) -> Result<Self::Value, E>
        where
            E: Error,
        {
            let _ = v;
            Err(E::custom("unexpected bytes"))
        }
        fn visit_seq<A>(self, seq: A) -> Result<Self::Value, A::Error>
        where
            A: SeqAccess<'de>,
        {
            let _ = seq;
            Err(A::Error::custom("unexpected seq"))
        }
    }

    pub trait SeqAccess<'de> {
        type Error: Error;
        fn next_element<T>(&mut self) -> Result<Option<T>, Self::Error>
        where
            T: super::Deserialize<'de>;
    }
}

macro_rules! primitive_impls {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.serialize_unit()
                }
            }
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
                    Err(<D::Error as de::Error>::custom("stub"))
                }
            }
        )*
    };
}

primitive_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String, std::net::Ipv4Addr);

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom("stub"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom("stub"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom("stub"))
    }
}
