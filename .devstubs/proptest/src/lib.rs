//! Dev-only miniature of `proptest` 1.x (offline container). Supports the
//! subset used by this workspace's new tests: `proptest! { #[test] fn
//! f(x in strategy, ...) { .. } }`, integer/float range strategies,
//! `collection::vec`, `Just`, and the `prop_assert*` macros. Runs each
//! property 64 times with a deterministic splitmix64 stream.

pub mod strategy {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub trait Strategy {
        type Value;
        fn generate(&self, state: &mut u64) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, state: &mut u64) -> $t {
                    assert!(self.start < self.end);
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (splitmix64(state) as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, state: &mut u64) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi);
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (splitmix64(state) as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, state: &mut u64) -> f64 {
            let x = (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + x * (self.end - self.start)
        }
    }

    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _state: &mut u64) -> T {
            self.0.clone()
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, state: &mut u64) -> Vec<S::Value> {
            let n = self.size.clone().generate(state);
            (0..n).map(|_| self.element.generate(state)).collect()
        }
    }

    pub fn vec_strategy<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod collection {
    pub use super::strategy::vec_strategy as vec;
}

pub mod prelude {
    pub use super::collection;
    pub use super::strategy::{Just, Strategy};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut __pt_state: u64 =
                0xD1B54A32D192ED03u64 ^ (stringify!($name).len() as u64);
            for __pt_case in 0..64u32 {
                let _ = __pt_case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __pt_state);)*
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}
