//! Dev-only miniature of `proptest` 1.x (offline container). Supports the
//! subset used by this workspace's new tests: `proptest! { #[test] fn
//! f(x in strategy, ...) { .. } }`, integer/float range strategies,
//! `collection::vec`, `Just`, and the `prop_assert*` macros. Runs each
//! property 64 times with a deterministic splitmix64 stream.

pub mod strategy {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub trait Strategy {
        type Value;
        fn generate(&self, state: &mut u64) -> Self::Value;

        /// Derived strategy applying `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, state: &mut u64) -> O {
            (self.f)(self.inner.generate(state))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!` backend).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, state: &mut u64) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! needs at least one arm");
            let k = (splitmix64(state) as usize) % self.options.len();
            self.options[k].generate(state)
        }
    }

    pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        OneOf { options }
    }

    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Raw deterministic stream access for `arbitrary::Any`.
    pub fn raw_u64(state: &mut u64) -> u64 {
        splitmix64(state)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, state: &mut u64) -> $t {
                    assert!(self.start < self.end);
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (splitmix64(state) as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, state: &mut u64) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi);
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (splitmix64(state) as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, state: &mut u64) -> f64 {
            let x = (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + x * (self.end - self.start)
        }
    }

    /// Real proptest treats a `&str` strategy as a regex. The miniature
    /// supports the subset the workspace uses: literal characters, one
    /// `[x-y…]` class per element, and `{m,n}` / `{n}` / `+` / `*`
    /// quantifiers.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, state: &mut u64) -> String {
            let chars: Vec<char> = self.chars().collect();
            let mut out = String::new();
            let mut i = 0;
            while i < chars.len() {
                // one element: a char class or a literal
                let class: Vec<char> = if chars[i] == '[' {
                    let close = chars[i..].iter().position(|&c| c == ']').map_or(
                        chars.len() - 1,
                        |p| i + p,
                    );
                    let mut cs = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            cs.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            cs.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    cs
                } else {
                    let c = chars[i];
                    i += 1;
                    vec![c]
                };
                // optional quantifier
                let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map_or(chars.len() - 1, |p| i + p);
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().unwrap_or(0),
                            n.trim().parse().unwrap_or(8),
                        ),
                        None => {
                            let n = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                } else if i < chars.len() && (chars[i] == '+' || chars[i] == '*') {
                    let lo = usize::from(chars[i] == '+');
                    i += 1;
                    (lo, 8)
                } else {
                    (1, 1)
                };
                let n = lo + (splitmix64(state) as usize) % (hi - lo + 1);
                for _ in 0..n {
                    if !class.is_empty() {
                        let k = (splitmix64(state) as usize) % class.len();
                        out.push(class[k]);
                    }
                }
            }
            out
        }
    }

    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _state: &mut u64) -> T {
            self.0.clone()
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, state: &mut u64) -> Vec<S::Value> {
            let n = self.size.clone().generate(state);
            (0..n).map(|_| self.element.generate(state)).collect()
        }
    }

    pub fn vec_strategy<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, state: &mut u64) -> Self::Value {
                    ($(self.$i.generate(state),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (S0/0, S1/1);
        (S0/0, S1/1, S2/2);
        (S0/0, S1/1, S2/2, S3/3);
        (S0/0, S1/1, S2/2, S3/3, S4/4);
        (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);
        (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6);
        (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7);
        (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7, S8/8);
        (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7, S8/8, S9/9);
        (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7, S8/8, S9/9, S10/10);
        (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7, S8/8, S9/9, S10/10, S11/11);
    }
}

/// `any::<T>()`, the strategy behind real proptest's bare `arg: T`
/// parameter shorthand in `proptest!`.
pub mod arbitrary {
    use super::strategy::Strategy;

    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, state: &mut u64) -> $t {
                    super::strategy::raw_u64(state) as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, state: &mut u64) -> bool {
            super::strategy::raw_u64(state) & 1 == 1
        }
    }

    impl Strategy for Any<u128> {
        type Value = u128;
        fn generate(&self, state: &mut u64) -> u128 {
            let hi = super::strategy::raw_u64(state) as u128;
            let lo = super::strategy::raw_u64(state) as u128;
            (hi << 64) | lo
        }
    }

    impl Strategy for Any<i128> {
        type Value = i128;
        fn generate(&self, state: &mut u64) -> i128 {
            let hi = super::strategy::raw_u64(state) as u128;
            let lo = super::strategy::raw_u64(state) as u128;
            ((hi << 64) | lo) as i128
        }
    }
}

/// Mirror of real proptest's `prop` module alias (`prop::collection::vec`).
pub mod prop {
    pub use super::collection;
    pub use super::strategy;
}

pub mod collection {
    pub use super::strategy::vec_strategy as vec;
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::collection;
    pub use super::prop;
    pub use super::strategy::{Just, Strategy};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    () => {};
    // `#![proptest_config(..)]` tunes case counts/shrinking in real
    // proptest; the miniature always runs its fixed deterministic stream,
    // so the attribute is accepted and ignored.
    (#![proptest_config($($cfg:tt)*)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    ($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut __pt_state: u64 =
                0xD1B54A32D192ED03u64 ^ (stringify!($name).len() as u64);
            for __pt_case in 0..64u32 {
                let _ = __pt_case;
                $crate::proptest!(@bind __pt_state; $($params)*);
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
    // Parameter muncher: `arg in strategy` or bare `arg: Type` (real
    // proptest's `Arbitrary` shorthand), in any mix.
    (@bind $state:ident;) => {};
    (@bind $state:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $state);
    };
    (@bind $state:ident; $arg:ident in $strat:expr, $($more:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $state);
        $crate::proptest!(@bind $state; $($more)*);
    };
    (@bind $state:ident; $arg:ident : $ty:ty) => {
        let $arg: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $state,
        );
    };
    (@bind $state:ident; $arg:ident : $ty:ty, $($more:tt)*) => {
        let $arg: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $state,
        );
        $crate::proptest!(@bind $state; $($more)*);
    };
}
