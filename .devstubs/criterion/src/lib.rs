//! Dev-only stand-in for `criterion` 0.5 (offline container). Runs each
//! bench a few times with `std::time::Instant` and prints mean wall time,
//! so relative speedups are still observable locally.

use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, p: P) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

#[allow(dead_code)]
trait IdLabel {
    fn label(&self) -> String;
}

impl IdLabel for BenchmarkId {
    fn label(&self) -> String {
        self.0.clone()
    }
}

impl IdLabel for &str {
    fn label(&self) -> String {
        self.to_string()
    }
}

impl IdLabel for String {
    fn label(&self) -> String {
        self.clone()
    }
}

pub struct Bencher {
    samples: u32,
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup, then timed samples.
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = t0.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: u32, mut f: F) {
    let mut b = Bencher { samples, mean_ns: 0.0 };
    f(&mut b);
    if b.mean_ns >= 1e9 {
        println!("bench {label:<48} {:>12.3} s", b.mean_ns / 1e9);
    } else if b.mean_ns >= 1e6 {
        println!("bench {label:<48} {:>12.3} ms", b.mean_ns / 1e6);
    } else {
        println!("bench {label:<48} {:>12.3} us", b.mean_ns / 1e3);
    }
}

pub struct Criterion {
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 3 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.samples, f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: self.samples, _parent: self }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: BenchLabel,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.bench_label());
        run_one(&label, self.samples, f);
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: BenchLabel,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let label = format!("{}/{}", self.name, id.bench_label());
        run_one(&label, self.samples, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub trait BenchLabel {
    fn bench_label(&self) -> String;
}

impl BenchLabel for BenchmarkId {
    fn bench_label(&self) -> String {
        self.0.clone()
    }
}

impl BenchLabel for &str {
    fn bench_label(&self) -> String {
        self.to_string()
    }
}

impl BenchLabel for String {
    fn bench_label(&self) -> String {
        self.clone()
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
