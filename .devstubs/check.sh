#!/bin/sh
# Dev-only: build/check/test offline against the .devstubs stand-in crates.
# Usage: .devstubs/check.sh check --workspace --lib   (any cargo subcommand+args)
cd "$(dirname "$0")/.." || exit 1
exec cargo --offline \
  --config 'patch.crates-io.serde.path=".devstubs/serde"' \
  --config 'patch.crates-io.rand.path=".devstubs/rand"' \
  --config 'patch.crates-io.proptest.path=".devstubs/proptest"' \
  --config 'patch.crates-io.criterion.path=".devstubs/criterion"' \
  "$@"
