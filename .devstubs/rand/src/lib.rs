//! Dev-only stand-in for `rand` 0.8 (offline container). Deterministic and
//! functional, but NOT stream-compatible with the real crate: only use for
//! local type-checking and behavioural (not golden-value) test runs.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for b in seed.as_mut().iter_mut() {
            state = state
                .wrapping_add(0x9E3779B97F4A7C15)
                .wrapping_mul(0xBF58476D1CE4E5B9);
            *b = (state >> 56) as u8;
        }
        Self::from_seed(seed)
    }
}

pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        self.gen_range(0..denominator) < numerator
    }

    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }

    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample_iter(self)
    }

    fn fill<T: AsMut<[u8]> + ?Sized>(&mut self, dest: &mut T) {
        self.fill_bytes(dest.as_mut())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256**-based deterministic generator (not the real StdRng!).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let r = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            // Warm up so weak seeds decorrelate.
            let mut rng = StdRng { s };
            for _ in 0..8 {
                rng.step();
            }
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.step().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    /// Alias of [`StdRng`] in this stub.
    pub type SmallRng = StdRng;
}

pub mod distributions {
    use super::Rng;

    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

        fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
        where
            R: Rng,
            Self: Sized,
        {
            DistIter { distr: self, rng, _marker: std::marker::PhantomData }
        }
    }

    pub struct DistIter<D, R, T> {
        distr: D,
        rng: R,
        _marker: std::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: Rng, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_uint {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub mod uniform {
        use super::super::{Rng, RngCore};

        pub trait SampleUniform: Sized {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self;
        }

        macro_rules! uniform_int {
            ($($t:ty => $wide:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
                        assert!(lo < hi_excl, "empty range in gen_range");
                        let span = (hi_excl as $wide).wrapping_sub(lo as $wide) as u64;
                        lo.wrapping_add((rng.next_u64() % span) as $t)
                    }
                }
            )*};
        }
        uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                     i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

        impl SampleUniform for f64 {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
                assert!(lo < hi_excl, "empty range in gen_range");
                let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + x * (hi_excl - lo)
            }
        }

        impl SampleUniform for f32 {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
                f64::sample_between(rng, lo as f64, hi_excl as f64) as f32
            }
        }

        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end)
            }
        }

        impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + x * (hi - lo)
            }
        }

        macro_rules! inclusive_int {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in gen_range");
                        if lo == <$t>::MIN && hi == <$t>::MAX {
                            return rng.next_u64() as $t;
                        }
                        <$t>::sample_between(rng, lo, hi + 1)
                    }
                }
            )*};
        }
        inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        #[derive(Debug, Clone, Copy)]
        pub struct Uniform<T> {
            lo: T,
            hi_excl: T,
        }

        impl<T: SampleUniform + Copy> Uniform<T> {
            pub fn new(lo: T, hi_excl: T) -> Self {
                Uniform { lo, hi_excl }
            }
        }

        impl<T: SampleUniform + Copy> super::Distribution<T> for Uniform<T> {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
                T::sample_between(rng, self.lo, self.hi_excl)
            }
        }
    }

    pub use uniform::Uniform;
}

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (&mut *rng).gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher-Yates over indices.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            let take = amount.min(self.len());
            for i in 0..take {
                let j = (&mut *rng).gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(take);
            idx.into_iter().map(|i| &self[i]).collect::<Vec<_>>().into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (&mut *rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
